package core

import (
	"bytes"
	"sync"
	"testing"

	"fbdcnet/internal/netsim"
	"fbdcnet/internal/topology"
)

// TestParallelDeterminism is the engine's headline regression: the full
// QuickConfig experiment suite must produce byte-identical Summarize
// output at 1, 2, and 8 workers for the same seed — both on a healthy
// fabric and with a non-empty fault schedule in play. Worker count may
// only change wall-clock, never a single float.
func TestParallelDeterminism(t *testing.T) {
	for _, scenario := range []string{"", netsim.ScenarioCSWDown} {
		var want []byte
		for _, workers := range []int{1, 2, 8} {
			cfg := QuickConfig()
			cfg.Seed = 42
			cfg.Parallelism = workers
			cfg.Taggers = workers
			cfg.FaultScenario = scenario
			sum := MustNewSystem(cfg).Summarize()
			data, err := sum.JSON()
			if err != nil {
				t.Fatal(err)
			}
			if scenario != "" && (sum.FaultInjection == nil || sum.FaultInjection.ReroutedBytes == 0) {
				t.Fatalf("scenario %q: summary is missing rerouted-byte counters: %+v",
					scenario, sum.FaultInjection)
			}
			// QuickConfig samples telemetry by default; its digest rides in
			// the same byte-compared JSON, pinning path records, occupancy
			// quantiles, and hotspot ranking at every worker count.
			if sum.Telemetry == nil || sum.Telemetry.SampledAttempts == 0 {
				t.Fatalf("scenario %q: summary is missing telemetry samples: %+v",
					scenario, sum.Telemetry)
			}
			if want == nil {
				want = data
				continue
			}
			if !bytes.Equal(data, want) {
				t.Fatalf("scenario %q: summary at %d workers differs from 1-worker output:\n%s\nvs\n%s",
					scenario, workers, data, want)
			}
		}
	}
}

// TestFleetDatasetWorkerInvariance pins the sharded collector directly:
// identical aggregates whether one worker or eight drain the task grid.
func TestFleetDatasetWorkerInvariance(t *testing.T) {
	var ref *System
	for _, workers := range []int{1, 8} {
		cfg := QuickConfig()
		cfg.Taggers = workers
		s := MustNewSystem(cfg)
		ds := s.FleetDataset()
		if workers == 1 {
			ref = s
			continue
		}
		refDS := ref.FleetDataset()
		if got, want := ds.TotalBytes(), refDS.TotalBytes(); got != want {
			t.Fatalf("total bytes %v at %d workers, want %v", got, workers, want)
		}
		a, b := ds.LocalityShareAll(), refDS.LocalityShareAll()
		for _, l := range topology.Localities {
			if a[l] != b[l] {
				t.Fatalf("locality %v: %v at %d workers, want %v", l, a[l], workers, b[l])
			}
		}
		for m, v := range ds.PerMinute() {
			if w := refDS.PerMinute()[m]; v != w {
				t.Fatalf("minute %d: %v at %d workers, want %v", m, v, workers, w)
			}
		}
	}
}

// TestFleetMatrixDeterminism pins matrix-mode collection the same way
// TestParallelDeterminism pins the sampling mode: the full summary must
// be byte-identical at 1, 2, and 8 workers when fleet traffic comes from
// the vectorised demand-matrix path.
func TestFleetMatrixDeterminism(t *testing.T) {
	if raceEnabled {
		// Three full suite runs multiply past the race job's budget; the
		// coverage job runs this without the detector.
		t.Skip("skipping multi-suite matrix determinism check under -race")
	}
	var want []byte
	for _, workers := range []int{1, 2, 8} {
		cfg := QuickConfig()
		cfg.Seed = 42
		cfg.Parallelism = workers
		cfg.Taggers = workers
		cfg.FleetMatrix = true
		sum := MustNewSystem(cfg).Summarize()
		data, err := sum.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = data
			continue
		}
		if !bytes.Equal(data, want) {
			t.Fatalf("matrix-mode summary at %d workers differs from 1-worker output:\n%s\nvs\n%s",
				workers, data, want)
		}
	}
}

// TestTraceConcurrentMemoization hammers the singleflight memo: many
// goroutines requesting the same and different bundles must agree on one
// generation per key.
func TestTraceConcurrentMemoization(t *testing.T) {
	s := MustNewSystem(QuickConfig())
	const callers = 8
	got := make([]*TraceBundle, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			got[i] = s.Trace(topology.RoleWeb, s.Cfg.ShortTraceSec)
		}()
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if got[i] != got[0] {
			t.Fatal("concurrent Trace calls returned distinct bundles")
		}
	}
	if got[0].Packets == 0 {
		t.Fatal("bundle has no packets")
	}
}
