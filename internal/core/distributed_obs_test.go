package core

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"fbdcnet/internal/obs"
	"fbdcnet/internal/obs/export"
)

// fedCounters are the fleet counters whose federated totals must be an
// exact sum over agents; fedHist's COUNT is comparable the same way
// (its sum is wall time and legitimately differs across runs).
var fedCounters = []string{
	"fbdcnet_fleet_flow_attempts_total",
	"fbdcnet_fleet_records_total",
}

const fedHist = "fbdcnet_fleet_shard_us"

// runDistributedObs is runDistributed with observability enabled on
// both sides: the aggregator gets its own registry, and every agent
// incarnation gets a fresh one (as a real process restart would). It
// returns the digest, the gaps, the aggregator System (registry and
// federated reports hang off it), and each incarnation's registry.
func runDistributedObs(t *testing.T, cfg Config, agents int, plan *AgentCrashPlan) ([]byte, []CoverageGap, *System, []*obs.Registry) {
	t.Helper()
	acfg := cfg
	acfg.Obs = obs.NewRegistry()
	sys := MustNewSystem(acfg)
	addr := filepath.Join(t.TempDir(), "agg.sock")
	ln, err := net.Listen("unix", addr)
	if err != nil {
		t.Fatal(err)
	}

	var regMu sync.Mutex
	var agentRegs []*obs.Registry
	agentErrs := make(chan error, agents)
	var wg sync.WaitGroup
	for a := 0; a < agents; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for inc := uint32(0); ; inc++ {
				icfg := cfg
				icfg.Obs = obs.NewRegistry()
				regMu.Lock()
				agentRegs = append(agentRegs, icfg.Obs)
				regMu.Unlock()
				asys := MustNewSystem(icfg)
				conn, err := DialFleetAgent("unix", addr, 5*time.Second)
				if err != nil {
					agentErrs <- err
					return
				}
				crashAfter := int64(-1)
				if plan != nil && plan.Agent == a && inc == 0 {
					crashAfter = plan.AfterTask
				}
				err = asys.RunFleetAgent(a, agents, inc, conn, crashAfter)
				conn.Close()
				if errors.Is(err, ErrPlannedCrash) {
					continue
				}
				if err != nil {
					agentErrs <- fmt.Errorf("agent %d: %w", a, err)
				}
				return
			}
		}(a)
	}

	ds, gaps, err := sys.ServeFleetAggregator(ln, agents, 10*time.Second)
	ln.Close()
	wg.Wait()
	close(agentErrs)
	for e := range agentErrs {
		t.Fatal(e)
	}
	if err != nil {
		t.Fatal(err)
	}
	if !sys.InjectFleetDataset(ds, gaps) {
		t.Fatal("fleet dataset already memoized before injection")
	}
	return digestJSON(t, sys), gaps, sys, agentRegs
}

// TestDistributedObsFederation is the federation contract on clean
// runs: for every fleet counter, aggregator total == exact sum of the
// per-agent totals == the single-process run's total, at 1, 2, 4, and
// 8 agents. At 4 agents the exported timeline must validate and carry
// spans from every agent plus the aggregator.
func TestDistributedObsFederation(t *testing.T) {
	cfg := QuickConfig()
	scfg := cfg
	scfg.Obs = obs.NewRegistry()
	ssys := MustNewSystem(scfg)
	want := digestJSON(t, ssys) // forces single-process collection

	for _, agents := range []int{1, 2, 4, 8} {
		got, gaps, asys, regs := runDistributedObs(t, cfg, agents, nil)
		if len(gaps) != 0 {
			t.Fatalf("%d agents: clean run reported %d gaps", agents, len(gaps))
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%d agents: digest differs from single-process run", agents)
		}
		aggReg := asys.Cfg.Obs
		for _, name := range fedCounters {
			agg := aggReg.CounterValue(name)
			var sum int64
			for _, r := range regs {
				sum += r.CounterValue(name)
			}
			if agg != sum {
				t.Errorf("%d agents: %s aggregator=%d sum(agents)=%d", agents, name, agg, sum)
			}
			if single := ssys.Cfg.Obs.CounterValue(name); agg != single {
				t.Errorf("%d agents: %s federated=%d single-process=%d", agents, name, agg, single)
			}
		}
		agg := aggReg.HistogramCount(fedHist)
		var sum int64
		for _, r := range regs {
			sum += r.HistogramCount(fedHist)
		}
		if agg != sum {
			t.Errorf("%d agents: %s count aggregator=%d sum(agents)=%d", agents, fedHist, agg, sum)
		}
		if single := ssys.Cfg.Obs.HistogramCount(fedHist); agg != single {
			t.Errorf("%d agents: %s count federated=%d single-process=%d", agents, fedHist, agg, single)
		}

		// Every agent's FIN-time report arrived.
		reports := asys.AgentReports()
		if len(reports) != agents {
			t.Fatalf("%d agents: %d reports", agents, len(reports))
		}
		for a, rep := range reports {
			if rep == nil {
				t.Fatalf("%d agents: agent %d never reported", agents, a)
			}
			if int(rep.AgentID) != a {
				t.Errorf("%d agents: report %d claims agent %d", agents, a, rep.AgentID)
			}
			if len(rep.Events) == 0 {
				t.Errorf("%d agents: agent %d report carries no span events", agents, a)
			}
		}

		if agents == 4 {
			procs := export.FromRun(aggReg, reports)
			data, err := export.ChromeTrace(procs)
			if err != nil {
				t.Fatal(err)
			}
			if err := export.Validate(data); err != nil {
				t.Fatalf("4-agent trace fails validation: %v", err)
			}
			pids := map[int]bool{}
			for _, p := range procs {
				if len(p.Events) > 0 {
					pids[p.PID] = true
				}
			}
			for pid := 0; pid <= 4; pid++ {
				if !pids[pid] {
					t.Errorf("trace missing spans for pid %d (0=aggregator, 1+N=agent N)", pid)
				}
			}
		}
	}
}

// TestDistributedObsFederationMatrix covers the matrix-mode counter.
func TestDistributedObsFederationMatrix(t *testing.T) {
	cfg := QuickConfig()
	cfg.FleetMatrix = true
	scfg := cfg
	scfg.Obs = obs.NewRegistry()
	ssys := MustNewSystem(scfg)
	want := digestJSON(t, ssys)

	got, _, asys, regs := runDistributedObs(t, cfg, 2, nil)
	if !bytes.Equal(got, want) {
		t.Fatal("matrix-mode digest differs from single-process run")
	}
	const name = "fbdcnet_fleet_matrix_cells_total"
	agg := asys.Cfg.Obs.CounterValue(name)
	var sum int64
	for _, r := range regs {
		sum += r.CounterValue(name)
	}
	if agg == 0 || agg != sum || agg != ssys.Cfg.Obs.CounterValue(name) {
		t.Errorf("%s: aggregator=%d sum(agents)=%d single=%d", name, agg, sum, ssys.Cfg.Obs.CounterValue(name))
	}
}

// TestDistributedObsFederationCrash is the kill/restart arm: after a
// seed-planned mid-window crash and restart, the federated counters
// must equal the instrumented skip-oracle's — cells the crash gapped
// contribute nothing (their deltas are discarded, not double-counted,
// even when the agent sent the delta and died before the partial
// merged), and the restarted incarnation's recomputation of already-
// merged cells is not re-folded.
func TestDistributedObsFederationCrash(t *testing.T) {
	cfg := crashConfig()
	agents := 4
	plan := MustNewSystem(cfg).PlanAgentCrash(agents)

	got, gaps, asys, _ := runDistributedObs(t, cfg, agents, &plan)
	if len(gaps) == 0 {
		t.Fatal("mid-window crash produced no coverage gap")
	}

	spw := asys.fleetShardsPerWindow()
	skip := map[int]bool{}
	for _, g := range gaps {
		for sh := g.ShardLo; sh < g.ShardHi; sh++ {
			skip[g.Window*spw+sh] = true
		}
	}
	rcfg := cfg
	rcfg.Obs = obs.NewRegistry()
	ref := MustNewSystem(rcfg)
	if !ref.InjectFleetDataset(ref.fleetReferenceSkipping(skip), gaps) {
		t.Fatal("reference system already memoized")
	}
	if want := digestJSON(t, ref); !bytes.Equal(got, want) {
		t.Fatal("crashed-run digest differs from skip-oracle")
	}

	aggReg := asys.Cfg.Obs
	for _, name := range fedCounters {
		if agg, want := aggReg.CounterValue(name), rcfg.Obs.CounterValue(name); agg != want {
			t.Errorf("%s: federated=%d skip-oracle=%d (gapped cells must contribute nothing)", name, agg, want)
		}
	}
	if agg, want := aggReg.HistogramCount(fedHist), rcfg.Obs.HistogramCount(fedHist); agg != want {
		t.Errorf("%s count: federated=%d skip-oracle=%d", fedHist, agg, want)
	}

	// The manifest's per-agent section accounts the restart.
	recs := asys.AgentManifestRecords()
	if len(recs) != agents {
		t.Fatalf("manifest has %d agent records, want %d", len(recs), agents)
	}
	for _, rec := range recs {
		if rec.Agent == plan.Agent {
			if rec.Restarts < 1 || rec.Incarnations < 2 {
				t.Errorf("victim record: %+v, want ≥1 restart", rec)
			}
			if rec.GapCells == 0 {
				t.Errorf("victim record carries no gap cells: %+v", rec)
			}
		} else if rec.Restarts != 0 {
			t.Errorf("agent %d records %d restarts, crash was agent %d", rec.Agent, rec.Restarts, plan.Agent)
		}
	}
}

// TestDistributedObsNoPerturbation is the zero-interference contract:
// turning metrics on leaves the canonical digest byte-identical to the
// metrics-off run at 1, 4, and 8 agents, including the crash arm.
// (Metrics-off distributed == single-process is pinned elsewhere, so
// comparing against the metrics-off single-process digest covers both
// identities.)
func TestDistributedObsNoPerturbation(t *testing.T) {
	cfg := QuickConfig() // cfg.Obs is nil: the metrics-off reference
	want := digestJSON(t, MustNewSystem(cfg))
	for _, agents := range []int{1, 4, 8} {
		got, gaps, _, _ := runDistributedObs(t, cfg, agents, nil)
		if len(gaps) != 0 {
			t.Fatalf("%d agents: clean run reported %d gaps", agents, len(gaps))
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%d agents: metrics-on digest differs from metrics-off run\n--- on ---\n%s\n--- off ---\n%s", agents, got, want)
		}
	}

	// Crash arm: the gap block and everything else survive byte-identical.
	ccfg := crashConfig()
	plan := MustNewSystem(ccfg).PlanAgentCrash(4)
	off, _ := runDistributed(t, ccfg, 4, &plan)
	on, _, _, _ := runDistributedObs(t, ccfg, 4, &plan)
	if !bytes.Equal(on, off) {
		t.Fatalf("crash arm: metrics-on digest differs from metrics-off\n--- on ---\n%s\n--- off ---\n%s", on, off)
	}
}

// TestAgentMetricsAddr pins the per-agent endpoint derivation used by
// -spawn: base port + 1 + agent index, port 0 passes through (each
// agent picks its own free port), and unparsable bases derive nothing.
func TestAgentMetricsAddr(t *testing.T) {
	cases := []struct {
		base string
		a    int
		want string
	}{
		{"127.0.0.1:9100", 0, "127.0.0.1:9101"},
		{"127.0.0.1:9100", 3, "127.0.0.1:9104"},
		{"localhost:0", 7, "localhost:0"},
		{":8080", 1, ":8082"},
		{"", 0, ""},
		{"no-port", 0, ""},
		{"host:notanumber", 0, ""},
	}
	for _, c := range cases {
		if got := AgentMetricsAddr(c.base, c.a); got != c.want {
			t.Errorf("AgentMetricsAddr(%q, %d) = %q, want %q", c.base, c.a, got, c.want)
		}
	}
}
