//go:build race

package core

// raceEnabled gates the multi-minute perturbation check out of
// race-detector jobs; see race_off_test.go for the default.
const raceEnabled = true
