package core

import (
	"fmt"
	"sort"
	"strings"

	"fbdcnet/internal/analysis"
	"fbdcnet/internal/netsim"
	"fbdcnet/internal/packet"
	"fbdcnet/internal/render"
	"fbdcnet/internal/services"
	"fbdcnet/internal/topology"
	"fbdcnet/internal/workload"
)

// Figure15Config sizes the switch-buffer experiment: a sequence of
// diurnally modulated windows of packet-level simulation through the
// top-of-rack switches of one Web rack and one cache rack, with
// shared-buffer occupancy sampled every 10 µs (§6.3).
type Figure15Config struct {
	Windows     int     // diurnal points simulated (the "day")
	WindowSec   int     // seconds of packet-level traffic per window
	LoadBoost   float64 // rate multiplier putting the rack at stressed load
	BufBytes    int64   // RSW shared buffer for the experiment
	SampleEvery netsim.Time
}

// DefaultFigure15Config returns the standard shape: 12 windows across the
// diurnal cycle, one second each. BufBytes models the dynamic per-port-
// group threshold of a shared-memory ToR ASIC (the "configured limit" of
// §6.3), not the chip's full packet memory, which is why bursts can
// approach it at percent-level link utilization.
func DefaultFigure15Config() Figure15Config {
	return Figure15Config{
		Windows:     12,
		WindowSec:   1,
		LoadBoost:   10,
		BufBytes:    32 << 10,
		SampleEvery: 10 * netsim.Microsecond,
	}
}

// Figure15Result carries the buffer, utilization, and drop series of the
// two monitored racks.
type Figure15Result struct {
	// Per-second normalized occupancy (median and max of 10-µs samples).
	WebMedian, WebMax     []float64
	CacheMedian, CacheMax []float64
	// Per-window average edge utilization of the rack's hosts.
	WebUtil, CacheUtil []float64
	// Per-window egress drops at each rack's RSW.
	WebDrops, CacheDrops []int64
	// Load is the diurnal multiplier per window.
	Load []float64
}

// Figure15 runs the packet-level switch experiment. Traffic for every
// host in the two racks is synthesized per window (each host's mirror
// stream), merged in time order, and injected into a full Clos fabric;
// the racks' RSWs are sampled at 10-µs granularity.
func (s *System) Figure15(cfg Figure15Config) *Figure15Result {
	eng := &netsim.Engine{}
	fcfg := netsim.DefaultFabricConfig()
	fcfg.RSWBufBytes = cfg.BufBytes
	fabric := netsim.NewFabric(eng, s.Topo, fcfg)

	webHost := s.Monitored(topology.RoleWeb)
	cacheHost := s.Monitored(topology.RoleCacheFollower)
	webRack := s.Topo.HostRack(webHost)
	cacheRack := s.Topo.HostRack(cacheHost)

	webRSW := fabric.RSW(webRack)
	cacheRSW := fabric.RSW(cacheRack)
	webBuf := analysis.NewBufferStats(cfg.BufBytes)
	cacheBuf := analysis.NewBufferStats(cfg.BufBytes)

	res := &Figure15Result{}
	winDur := netsim.Time(cfg.WindowSec) * netsim.Second
	var prevWebDrops, prevCacheDrops int64

	for w := 0; w < cfg.Windows; w++ {
		load := DiurnalFactor(float64(w) / float64(cfg.Windows))
		res.Load = append(res.Load, load)
		params := s.Cfg.Params.Scaled(load * cfg.LoadBoost)
		start := netsim.Time(w) * winDur

		// Synthesize each rack host's mirror stream for this window and
		// collect it for time-ordered injection.
		var hdrs []packet.Header
		collect := workload.CollectorFunc(func(h packet.Header) { hdrs = append(hdrs, h) })
		for _, rack := range []int{webRack, cacheRack} {
			for i := 0; i < int(s.Topo.Racks[rack].NumHosts); i++ {
				h := s.Topo.Racks[rack].Host(i)
				seed := s.Cfg.Seed ^ 0xf15<<20 ^ uint64(h)<<8 ^ uint64(w)
				tr := services.NewTrace(s.Pick, h, seed, params, collect)
				tr.Run(winDur)
			}
		}
		sort.SliceStable(hdrs, func(i, j int) bool { return hdrs[i].Time < hdrs[j].Time })
		for _, h := range hdrs {
			h := h
			h.Time += int64(start)
			eng.At(h.Time, func() { fabric.Inject(h) })
		}

		// Reset edge counters so per-window utilization is clean.
		for _, l := range fabric.LinksByTier(netsim.TierHostRSW) {
			l.ResetCounters()
		}
		netsim.SampleOccupancy(eng, webRSW, cfg.SampleEvery, start+winDur,
			func(t netsim.Time, occ int64) { webBuf.Sample(t, occ) })
		netsim.SampleOccupancy(eng, cacheRSW, cfg.SampleEvery, start+winDur,
			func(t netsim.Time, occ int64) { cacheBuf.Sample(t, occ) })
		eng.Run(start + winDur)

		res.WebUtil = append(res.WebUtil, rackEdgeUtil(fabric, s.Topo, webRack, winDur))
		res.CacheUtil = append(res.CacheUtil, rackEdgeUtil(fabric, s.Topo, cacheRack, winDur))
		res.WebDrops = append(res.WebDrops, webRSW.Drops()-prevWebDrops)
		res.CacheDrops = append(res.CacheDrops, cacheRSW.Drops()-prevCacheDrops)
		prevWebDrops, prevCacheDrops = webRSW.Drops(), cacheRSW.Drops()
	}
	webBuf.Finish()
	cacheBuf.Finish()
	res.WebMedian, res.WebMax = webBuf.Median(), webBuf.Max()
	res.CacheMedian, res.CacheMax = cacheBuf.Median(), cacheBuf.Max()
	return res
}

// rackEdgeUtil returns the mean utilization of a rack's host uplinks over
// the window.
func rackEdgeUtil(f *netsim.Fabric, topo *topology.Topology, rack int, dur netsim.Time) float64 {
	links := f.LinksByTier(netsim.TierHostRSW)
	total := 0.0
	rk := &topo.Racks[rack]
	for i := 0; i < int(rk.NumHosts); i++ {
		total += links[rk.Host(i)].Utilization(dur)
	}
	return total / float64(rk.NumHosts)
}

// MaxOf returns the maximum of a series (0 for empty).
func MaxOf(vs []float64) float64 {
	m := 0.0
	for _, v := range vs {
		if v > m {
			m = v
		}
	}
	return m
}

// Render prints the Figure 15 reproduction.
func (f *Figure15Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 15: ToR buffer occupancy / utilization / drops over the synthetic day\n")
	fmt.Fprintf(&b, "  load:            %s\n", render.Sparkline(f.Load))
	fmt.Fprintf(&b, "  web   occ max:   %s (peak %.3f of buffer)\n", render.Sparkline(f.WebMax), MaxOf(f.WebMax))
	fmt.Fprintf(&b, "  web   occ med:   %s\n", render.Sparkline(f.WebMedian))
	fmt.Fprintf(&b, "  cache occ max:   %s (peak %.3f of buffer)\n", render.Sparkline(f.CacheMax), MaxOf(f.CacheMax))
	fmt.Fprintf(&b, "  cache occ med:   %s\n", render.Sparkline(f.CacheMedian))
	fmt.Fprintf(&b, "  web   edge util: %s (peak %.4f)\n", render.Sparkline(f.WebUtil), MaxOf(f.WebUtil))
	fmt.Fprintf(&b, "  cache edge util: %s (peak %.4f)\n", render.Sparkline(f.CacheUtil), MaxOf(f.CacheUtil))
	drops := make([]float64, len(f.WebDrops))
	var totalDrops int64
	for i, d := range f.WebDrops {
		drops[i] = float64(d)
		totalDrops += d
	}
	fmt.Fprintf(&b, "  web egress drops:%s (total %d)\n", render.Sparkline(drops), totalDrops)
	return b.String()
}
