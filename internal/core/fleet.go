package core

import (
	"fbdcnet/internal/fbflow"
	"fbdcnet/internal/rng"
	"fbdcnet/internal/topology"
)

// FleetDataset runs the Fbflow pipeline over the whole fleet for the
// configured synthetic day and returns the aggregated dataset. The result
// is memoized: Table 3, Figure 5, and §4.1 share one collection run, as
// they did in the paper.
func (s *System) FleetDataset() *fbflow.Dataset {
	if s.fleet != nil {
		return s.fleet
	}
	ds := fbflow.NewDataset()
	pipe := fbflow.NewPipeline(s.Topo, 4, ds.Add)
	r := rng.New(s.Cfg.Seed ^ 0xf1ee7)
	for w := 0; w < s.Cfg.FleetWindows; w++ {
		load := DiurnalFactor(float64(w) / float64(s.Cfg.FleetWindows))
		minute := int64(w)
		for i := range s.Topo.Hosts {
			src := topology.HostID(i)
			srcAddr := s.Topo.Hosts[i].Addr
			s.Pick.FleetFlows(s.Cfg.Params, r, src, s.Cfg.FleetWindowSec, load, s.Cfg.FleetSamples,
				func(dst topology.HostID, bytes float64) {
					pipe.AddFlow(minute, srcAddr, s.Topo.Hosts[dst].Addr, bytes)
				})
		}
	}
	pipe.Close()
	s.fleet = ds
	return ds
}

// FleetDurationSec returns the total observed duration of the synthetic
// day in seconds.
func (s *System) FleetDurationSec() float64 {
	return float64(s.Cfg.FleetWindows) * s.Cfg.FleetWindowSec
}
