package core

import (
	"runtime"
	"sync"
	"time"

	"fbdcnet/internal/fbflow"
	"fbdcnet/internal/obs"
	"fbdcnet/internal/obs/audit"
	"fbdcnet/internal/packet"
	"fbdcnet/internal/rng"
	"fbdcnet/internal/services"
	"fbdcnet/internal/topology"
)

// fleetShardHosts is the fixed host-range width of one fleet collection
// shard. It is a constant, not a function of the worker count: every
// (window, shard) task draws from an rng stream keyed by its own
// coordinates, so the partition must be identical no matter how many
// workers run it — that is what makes the collected dataset bit-identical
// at -parallel 1, 2, or 8.
const fleetShardHosts = 128

// fleetMatrixShardRacks is the rack-range width of one matrix-mode shard:
// matrix synthesis walks racks, not hosts, so shards partition the rack ID
// space. Like fleetShardHosts it is a constant so the task grid — and with
// it every shard's rng stream — is independent of the worker count.
const fleetMatrixShardRacks = 64

// FleetDataset runs the Fbflow collection over the whole fleet for the
// configured synthetic day and returns the aggregated dataset. The result
// is memoized: Table 3, Figure 5, and §4.1 share one collection run, as
// they did in the paper.
//
// Collection is sharded by (window, host-range) across
// Config.TaggerWorkers() workers — the modern form of the tagger stage:
// each worker generates its shard's flows, tags them inline, and
// accumulates into a shard-local partial dataset. Partials merge in task
// order, so results do not depend on worker count or scheduling.
//
// With Config.FleetMatrix set, shards span rack ranges instead of host
// ranges and each worker synthesizes a demand matrix for its racks before
// drawing flows from it (see services.MatrixProgram).
func (s *System) FleetDataset() *fbflow.Dataset {
	s.fleetOnce.Do(func() { s.fleet = s.collectFleet() })
	return s.fleet
}

// fleetTask is one unit of fleet collection: one shard of hosts (sampling
// mode) or racks (matrix mode) within one observation window.
type fleetTask struct {
	window int
	shard  int
	lo, hi int // host ID range [lo, hi), or rack ID range in matrix mode
}

// fleetTasks enumerates the full (window × shard) task grid in the
// deterministic merge order.
func (s *System) fleetTasks() []fleetTask {
	n, width := s.Topo.NumHosts(), fleetShardHosts
	if s.Cfg.FleetMatrix {
		n, width = len(s.Topo.Racks), fleetMatrixShardRacks
	}
	shards := (n + width - 1) / width
	tasks := make([]fleetTask, 0, s.Cfg.FleetWindows*shards)
	for w := 0; w < s.Cfg.FleetWindows; w++ {
		for sh := 0; sh < shards; sh++ {
			lo := sh * width
			hi := min(lo+width, n)
			tasks = append(tasks, fleetTask{window: w, shard: sh, lo: lo, hi: hi})
		}
	}
	return tasks
}

// collectFleet runs the sharded synthetic day and merges the partials.
//
// Completed shards merge as soon as the task-order frontier reaches them
// (a worker finishing task i out of order parks it until every earlier
// task has merged), and merged partials return to a pool for reuse. The
// merge sequence is therefore exactly task order — bit-identical across
// worker counts — while live memory stays bounded by the worker count
// plus the out-of-order window instead of the full task grid, which is
// what keeps the 10× fleet preset collectable.
//
// Each task's obs shard parks and folds at the same frontier as its
// partial, so the registry's fold sequence is task order too: metric
// state at any frontier is reproducible at any worker count, and a live
// scrape can never observe half a shard.
func (s *System) collectFleet() *fbflow.Dataset {
	reg := s.Cfg.Obs
	sp := reg.StartSpan("fleet-collect")
	defer sp.End()
	aud := s.Cfg.Audit
	bb := aud.BB()
	bb.Record(audit.EvStageEnter, audit.StageFleetCollect, 0, 0)
	defer bb.Record(audit.EvStageExit, audit.StageFleetCollect, 0, 0)

	tasks := s.fleetTasks()
	tagger := fbflow.NewTagger(s.Topo)
	ds := fbflow.NewDataset()

	workers := s.Cfg.TaggerWorkers()
	if workers > len(tasks) {
		workers = len(tasks)
	}
	var prog *services.FleetProgram
	var mprog *services.MatrixProgram
	var mats []*services.DemandMatrix
	if s.Cfg.FleetMatrix {
		mprog = services.NewMatrixProgram(s.Pick, s.Cfg.Params)
		// One demand matrix per worker, reused (Reset, not reallocated)
		// across every task the worker runs: steady-state synthesis is
		// allocation-free.
		mats = make([]*services.DemandMatrix, workers)
		for i := range mats {
			mats[i] = services.NewDemandMatrix()
		}
	} else {
		prog = services.NewFleetProgram(s.Pick, s.Cfg.Params)
	}
	shardsPerWindow := 0
	if s.Cfg.FleetWindows > 0 {
		shardsPerWindow = len(tasks) / s.Cfg.FleetWindows
	}
	winProg := reg.NewProgress("fleet-windows", int64(s.Cfg.FleetWindows))
	busyNs := make([]int64, workers+1) // worker-owned slots, summed after the run
	collectStart := time.Now()

	var (
		mu        sync.Mutex
		parked    = make([]*fbflow.Partial, len(tasks))
		parkedObs = make([]*obs.Shard, len(tasks))
		done      = make([]bool, len(tasks))
		next      int
		pool      = sync.Pool{New: func() any {
			p := fbflow.NewPartial()
			if s.Cfg.SketchMode {
				p.EnableCardinality()
			}
			return p
		}}
		obsPool = sync.Pool{New: func() any { return reg.NewShard() }}
	)
	// Parked checkpoint values (no pointers: the arrays are written once
	// per task by its worker and read at the frontier under mu, exactly
	// like done[]). parkedAudM exists only in matrix mode, where each cell
	// carries a second matrix-synth checkpoint.
	var parkedAudF, parkedAudM []audit.Checkpoint
	if aud.Enabled() {
		parkedAudF = make([]audit.Checkpoint, len(tasks))
		if s.Cfg.FleetMatrix {
			parkedAudM = make([]audit.Checkpoint, len(tasks))
		}
	}
	runParallelWorkers(workers, len(tasks), func(w, i int) {
		var t0 time.Time
		if reg.Enabled() {
			t0 = time.Now()
		}
		p := pool.Get().(*fbflow.Partial)
		sh := obsPool.Get().(*obs.Shard)
		var fh, mh *audit.Hash
		var fhv, mhv audit.Hash
		if aud.Enabled() {
			fh = &fhv
			if s.Cfg.FleetMatrix {
				mh = &mhv
			}
		}
		if s.Cfg.FleetMatrix {
			s.collectMatrixShard(tagger, mprog, tasks[i], mats[w], p, sh, fh, mh)
		} else {
			s.collectShard(tagger, prog, tasks[i], p, sh, fh)
		}
		if aud.Enabled() {
			t := tasks[i]
			parkedAudF[i] = audit.Checkpoint{Stage: audit.StageFleetCollect, Window: t.window, Shard: t.shard, Sum: fhv.Sum(), Count: fhv.Count()}
			if parkedAudM != nil {
				parkedAudM[i] = audit.Checkpoint{Stage: audit.StageMatrixSynth, Window: t.window, Shard: t.shard, Sum: mhv.Sum(), Count: mhv.Count()}
			}
		}
		if reg.Enabled() {
			d := time.Since(t0)
			sh.Observe(s.obsIDs.fleetShardUs, d.Microseconds())
			busyNs[w] += d.Nanoseconds()
		}
		mu.Lock()
		parked[i], parkedObs[i], done[i] = p, sh, true
		mergeStart := next
		for next < len(tasks) && done[next] {
			q, qs := parked[next], parkedObs[next]
			parked[next], parkedObs[next] = nil, nil
			ds.MergePartial(q)
			q.Reset()
			pool.Put(q)
			qs.Fold()
			obsPool.Put(qs)
			if aud.Enabled() {
				if parkedAudM != nil {
					aud.Append(parkedAudM[next])
				}
				aud.Append(parkedAudF[next])
				bb.Record(audit.EvCellMerge, audit.StageFleetCollect, int64(tasks[next].window), int64(tasks[next].shard))
			}
			next++
		}
		if reg.Enabled() && next > mergeStart && shardsPerWindow > 0 {
			winProg.Set(int64(next / shardsPerWindow))
		}
		mu.Unlock()
	})

	if reg.Enabled() {
		winProg.Set(int64(s.Cfg.FleetWindows))
		elapsed := time.Since(collectStart).Nanoseconds()
		var busy int64
		for _, b := range busyNs {
			busy += b
		}
		if workers > 0 && elapsed > 0 {
			reg.SetGauge("fbdcnet_fleet_worker_busy_frac",
				float64(busy)/float64(elapsed*int64(workers)))
		}
		if att := reg.CounterValue("fbdcnet_fleet_flow_attempts_total"); att > 0 {
			reg.SetGauge("fbdcnet_fleet_sampling_coverage",
				float64(reg.CounterValue("fbdcnet_fleet_records_total"))/float64(att))
		}
		// Record the post-collect heap so the run manifest carries the
		// memory footprint of the fleet stage (the dataset is fully merged
		// here, so live heap ≈ the stage's peak retained set). The gauge is
		// what cmd/manifestcheck compares against mem_ceiling_bytes.
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		reg.SetGauge("fbdcnet_fleet_heap_peak_bytes", float64(ms.HeapAlloc))
		// Sketch mode carries HLL distinct-population sketches through the
		// same frontier; surface their estimates next to the byte gauges.
		if card := ds.Cardinality(); card != nil {
			reg.SetGauge("fbdcnet_fleet_distinct_flows", card.Flows())
			reg.SetGauge("fbdcnet_fleet_distinct_hosts", card.Hosts())
			reg.SetGauge("fbdcnet_fleet_distinct_racks", card.Racks())
		}
	}
	return ds
}

// collectMatrixShard synthesizes one rack-range shard's demand matrix and
// draws its flows into the caller's partial. The matrix is reused across
// tasks (Reset keeps its backing arrays), so the steady state allocates
// nothing. The rng stream is keyed by (seed, window, shard) exactly like
// sampling mode — a distinct seed fold keeps the two modes' streams
// decorrelated.
func (s *System) collectMatrixShard(tagger *fbflow.Tagger, prog *services.MatrixProgram, t fleetTask, m *services.DemandMatrix, into *fbflow.Partial, sh *obs.Shard, fh, mh *audit.Hash) {
	r := rng.NewKeyed(s.Cfg.Seed^0x3a721c, uint64(t.window), uint64(t.shard))
	load := DiurnalFactor(float64(t.window) / float64(s.Cfg.FleetWindows))
	minute := int64(t.window)
	ids := &s.obsIDs
	m.Reset()
	prog.Synth(r, t.lo, t.hi, s.Cfg.FleetWindowSec, load, m)
	sh.Add(ids.fleetMatrixCells, int64(m.Cells()))
	if mh.Enabled() {
		// Checkpoint the synthesized matrix before the draw: cells iterate
		// in insertion order, which Synth fixes per (seed, window, shard).
		m.EachCell(func(srcRack, dstRack int32, bytes float64) {
			mh.U64(uint64(uint32(srcRack))<<32 | uint64(uint32(dstRack)))
			mh.F64(bytes)
		})
	}
	prog.DrawFlows(r, m, func(src, dst topology.HostID, bytes float64) {
		sh.Inc(ids.fleetAttempts)
		if rec, ok := tagger.Flow(minute, s.Topo.Addr(src), s.Topo.Addr(dst), bytes); ok {
			into.Add(rec)
			sh.Inc(ids.fleetRecords)
			rec.FoldAudit(fh)
		}
	})
}

// collectShard generates and tags one task's flows into the caller's
// partial accumulator. The rng stream is a pure function of (seed,
// window, shard): the sample sequence a shard sees is fixed at
// configuration time, not at scheduling time. The obs shard counts
// offered versus sampled flows; a nil shard (observability disabled)
// costs two predicted branches per flow.
func (s *System) collectShard(tagger *fbflow.Tagger, prog *services.FleetProgram, t fleetTask, into *fbflow.Partial, sh *obs.Shard, fh *audit.Hash) {
	r := rng.NewKeyed(s.Cfg.Seed^0xf1ee7, uint64(t.window), uint64(t.shard))
	load := DiurnalFactor(float64(t.window) / float64(s.Cfg.FleetWindows))
	minute := int64(t.window)
	ids := &s.obsIDs
	var srcAddr packet.Addr
	emit := func(dst topology.HostID, bytes float64) {
		sh.Inc(ids.fleetAttempts)
		if rec, ok := tagger.Flow(minute, srcAddr, s.Topo.Addr(dst), bytes); ok {
			into.Add(rec)
			sh.Inc(ids.fleetRecords)
			rec.FoldAudit(fh)
		}
	}
	for src := topology.HostID(t.lo); src < topology.HostID(t.hi); src++ {
		srcAddr = s.Topo.Addr(src)
		prog.Flows(r, src, s.Cfg.FleetWindowSec, load, s.Cfg.FleetSamples, emit)
	}
}

// FleetDurationSec returns the total observed duration of the synthetic
// day in seconds.
func (s *System) FleetDurationSec() float64 {
	return float64(s.Cfg.FleetWindows) * s.Cfg.FleetWindowSec
}
