package fbdcnet

import (
	"bytes"
	"io"
	"testing"

	"fbdcnet/internal/fbflow"
	"fbdcnet/internal/fbwire"
	"fbdcnet/internal/rng"
	"fbdcnet/internal/topology"
)

// benchPartial builds one realistic large-preset window-shard partial:
// n records tagged through the real Tagger, sources drawn from one
// 128-host shard of the 138k-host fleet and destinations fleet-wide —
// the key population an agent actually accumulates before encoding a
// frame.
func benchPartial(tb testing.TB, n int) *fbflow.Partial {
	tb.Helper()
	topo := topology.MustBuild(topology.Preset(topology.ScaleLarge))
	tagger := fbflow.NewTagger(topo)
	r := rng.New(7)
	hosts := topo.NumHosts()
	const shardHosts = 128
	p := fbflow.NewPartial()
	for i := 0; i < n; i++ {
		src := topology.HostID(r.Intn(shardHosts))
		dst := topology.HostID(r.Intn(hosts))
		rec, ok := tagger.Flow(int64(i%7), topo.Addr(src), topo.Addr(dst), 40+r.Float64()*1e6)
		if !ok {
			tb.Fatalf("tagger rejected in-topology flow %d", i)
		}
		p.Add(rec)
	}
	return p
}

// BenchmarkPartialEncode measures the agent-side wire path: one columnar
// partial (4096 records) encoded as a length-prefixed PARTIAL frame into
// a reusable Writer. The steady state must not allocate — the agent
// encodes one frame per (window, shard) cell and any per-frame garbage
// multiplies across the fleet. BENCH_PR8.json gates ns/op and
// bytes/frame.
func BenchmarkPartialEncode(b *testing.B) {
	p := benchPartial(b, 4096)
	w := fbwire.NewWriter(io.Discard)
	// Warm the writer's frame buffer so b.N ops measure the steady state.
	if err := w.WritePartial(fbwire.PartialHeader{Seq: 0}, p); err != nil {
		b.Fatal(err)
	}
	before := w.BytesWritten()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := fbwire.PartialHeader{Seq: uint64(i + 1), Window: uint32(i % 6), Shard: uint32(i % 4)}
		if err := w.WritePartial(h, p); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(w.BytesWritten()-before)/float64(b.N), "bytes/frame")
}

// BenchmarkPartialDecode measures the aggregator-side path: frame
// delivery (Reader.Next) plus columnar decode into a reused Partial.
// The wire blob holds a long run of frames with increasing sequence
// numbers; the Reader is rebuilt only when the blob is exhausted, so the
// per-op alloc count shows the amortized steady state (0). BENCH_PR8.json
// gates ns/op.
func BenchmarkPartialDecode(b *testing.B) {
	p := benchPartial(b, 4096)
	const frames = 512
	var blob bytes.Buffer
	w := fbwire.NewWriter(&blob)
	for i := 0; i < frames; i++ {
		h := fbwire.PartialHeader{Seq: uint64(i), Window: uint32(i % 6), Shard: uint32(i % 4)}
		if err := w.WritePartial(h, p); err != nil {
			b.Fatal(err)
		}
	}
	wire := blob.Bytes()

	into := fbflow.NewPartial()
	br := bytes.NewReader(wire)
	r := fbwire.NewReader(br)
	left := frames
	b.ReportAllocs()
	b.SetBytes(int64(len(wire) / frames))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if left == 0 {
			br.Reset(wire)
			r = fbwire.NewReader(br)
			left = frames
		}
		f, err := r.Next()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := fbwire.DecodePartial(f.Payload, into); err != nil {
			b.Fatal(err)
		}
		left--
	}
	b.StopTimer()
	if !bytes.Equal(into.AppendBinary(nil), p.AppendBinary(nil)) {
		b.Fatal("decoded partial does not round-trip to the encoded bytes")
	}
}
