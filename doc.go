// Package fbdcnet is a reproduction of "Inside the Social Network's
// (Datacenter) Network" (Roy, Zeng, Bagga, Porter, Snoeren — SIGCOMM
// 2015) as a synthetic datacenter: a 4-post Clos topology populated with
// behavioural models of Facebook's services (Web, cache followers and
// leaders, Hadoop, Multifeed, SLB, MySQL), observed through faithful
// reimplementations of the paper's two collection systems (Fbflow-style
// fleet sampling and per-host port mirroring) and analyzed by the paper's
// measurement code (locality, flows, heavy hitters, arrival processes,
// buffer occupancy, concurrency).
//
// The entry point is internal/core: build a System, then run the
// Table*/Figure* experiments. bench_test.go in this directory regenerates
// every table and figure in the paper's evaluation; see DESIGN.md for the
// system inventory and EXPERIMENTS.md for paper-vs-measured results.
package fbdcnet
