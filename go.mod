module fbdcnet

go 1.22
