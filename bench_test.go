// Benchmark harness: one bench per table and figure of the paper's
// evaluation, plus the DESIGN.md ablations and the Table 1
// literature-baseline contrasts. Each bench prints the reproduced
// rows/series once (the same rows the paper reports) and publishes its
// headline scalar via b.ReportMetric, so `go test -bench=. -benchmem`
// regenerates the whole evaluation.
package fbdcnet

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"fbdcnet/internal/analysis"
	"fbdcnet/internal/baseline"
	"fbdcnet/internal/core"
	"fbdcnet/internal/netsim"
	"fbdcnet/internal/packet"
	"fbdcnet/internal/services"
	"fbdcnet/internal/telemetry"
	"fbdcnet/internal/topology"
	"fbdcnet/internal/workload"
)

var (
	sysOnce  sync.Once
	benchSys *core.System
)

// benchSystem memoizes one System for the whole bench run: trace bundles
// and the fleet dataset are shared across benches exactly as the paper's
// datasets were shared across analyses.
func benchSystem() *core.System {
	sysOnce.Do(func() {
		cfg := core.DefaultConfig()
		cfg.Scale = topology.ScaleTiny
		cfg.ShortTraceSec = 30
		cfg.LongTraceSec = 60
		benchSys = core.MustNewSystem(cfg)
	})
	return benchSys
}

var printed sync.Map

// printOnce emits an experiment's rendition a single time per run.
func printOnce(key, text string) {
	if _, loaded := printed.LoadOrStore(key, true); !loaded {
		fmt.Printf("\n%s\n", text)
	}
}

func BenchmarkTable2_ServiceMix(b *testing.B) {
	s := benchSystem()
	var res *core.Table2Result
	for i := 0; i < b.N; i++ {
		res = s.Table2()
	}
	printOnce("table2", res.Render())
	b.ReportMetric(100*res.Share[topology.RoleWeb][topology.RoleCacheFollower], "web-to-cache-%")
	b.ReportMetric(100*res.Share[topology.RoleHadoop][topology.RoleHadoop], "hadoop-to-hadoop-%")
}

func BenchmarkTable3_Locality(b *testing.B) {
	s := benchSystem()
	var res *core.Table3Result
	for i := 0; i < b.N; i++ {
		res = s.Table3()
	}
	printOnce("table3", res.Render())
	b.ReportMetric(100*res.All[topology.IntraCluster], "all-intra-cluster-%")
	b.ReportMetric(100*res.All[topology.IntraRack], "all-intra-rack-%")
}

func BenchmarkTable4_HeavyHitters(b *testing.B) {
	s := benchSystem()
	var res *core.Table4Result
	for i := 0; i < b.N; i++ {
		res = s.Table4()
	}
	printOnce("table4", res.Render())
	for _, r := range res.Rows {
		if r.Role == topology.RoleCacheFollower && r.Level == analysis.LevelFlow {
			b.ReportMetric(r.NumP50, "cache-f-flow-HH-p50")
		}
	}
}

func BenchmarkSection41_Utilization(b *testing.B) {
	s := benchSystem()
	var res *core.Section41Result
	for i := 0; i < b.N; i++ {
		res = s.Section41()
	}
	printOnce("section41", res.Render())
	b.ReportMetric(100*res.Tiers[netsim.TierHostRSW].Mean(), "edge-util-%")
	b.ReportMetric(res.DiurnalSwing, "diurnal-swing-x")
}

func BenchmarkFigure4_LocalityTimeseries(b *testing.B) {
	s := benchSystem()
	var res *core.Figure4Result
	for i := 0; i < b.N; i++ {
		res = s.Figure4()
	}
	printOnce("figure4", res.Render())
	b.ReportMetric(100*res.Share[topology.RoleWeb][topology.IntraCluster], "web-intra-cluster-%")
}

func BenchmarkFigure5_TrafficMatrix(b *testing.B) {
	s := benchSystem()
	var res *core.Figure5Result
	for i := 0; i < b.N; i++ {
		res = s.Figure5()
	}
	printOnce("figure5", res.Render())
	b.ReportMetric(100*res.HadoopDiag, "hadoop-diag-%")
	b.ReportMetric(100*res.FrontendDiag, "frontend-diag-%")
}

func BenchmarkFigure6_FlowSizes(b *testing.B) {
	s := benchSystem()
	var res *core.FlowDistResult
	for i := 0; i < b.N; i++ {
		res = s.Figure6()
	}
	printOnce("figure6", res.Render())
	b.ReportMetric(res.All[topology.RoleHadoop].Quantile(0.5), "hadoop-flow-p50-KB")
}

func BenchmarkFigure7_FlowDurations(b *testing.B) {
	s := benchSystem()
	var res *core.FlowDistResult
	for i := 0; i < b.N; i++ {
		res = s.Figure7()
	}
	printOnce("figure7", res.Render())
	b.ReportMetric(res.All[topology.RoleCacheFollower].Quantile(0.5)/1000, "cache-dur-p50-s")
	b.ReportMetric(res.All[topology.RoleHadoop].Quantile(0.5)/1000, "hadoop-dur-p50-s")
}

func BenchmarkFigure8_RateStability(b *testing.B) {
	s := benchSystem()
	var res *core.Figure8Result
	for i := 0; i < b.N; i++ {
		res = s.Figure8()
	}
	printOnce("figure8", res.Render())
	b.ReportMetric(100*res.CacheWithin2x, "cache-within-2x-%")
	b.ReportMetric(100*res.CacheSignificantChange, "cache-sig-change-%")
}

func BenchmarkFigure9_PerHostFlowSize(b *testing.B) {
	s := benchSystem()
	var res *core.Figure9Result
	for i := 0; i < b.N; i++ {
		res = s.Figure9()
	}
	printOnce("figure9", res.Render())
	b.ReportMetric(res.TightnessRatio, "per-host-p90/p10")
	b.ReportMetric(res.FlowP90P10, "per-flow-p90/p10")
}

func BenchmarkFigure10_HHStability(b *testing.B) {
	s := benchSystem()
	var res *core.HHDynamicsResult
	for i := 0; i < b.N; i++ {
		res = s.Figure10And11()
	}
	printOnce("figure1011", res.Render())
	cf := res.Persistence[topology.RoleCacheFollower]
	b.ReportMetric(cf[analysis.LevelRack][100*netsim.Millisecond], "cache-rack-100ms-persist-%")
	b.ReportMetric(cf[analysis.LevelFlow][netsim.Millisecond], "cache-flow-1ms-persist-%")
}

func BenchmarkFigure11_HHIntersection(b *testing.B) {
	s := benchSystem()
	var res *core.HHDynamicsResult
	for i := 0; i < b.N; i++ {
		res = s.Figure10And11()
	}
	printOnce("figure1011", res.Render())
	web := res.Intersection[topology.RoleWeb]
	b.ReportMetric(web[analysis.LevelRack][100*netsim.Millisecond], "web-rack-100ms-intersect-%")
}

func BenchmarkFigure12_PacketSizes(b *testing.B) {
	s := benchSystem()
	var res *core.Figure12Result
	for i := 0; i < b.N; i++ {
		res = s.Figure12()
	}
	printOnce("figure12", res.Render())
	b.ReportMetric(res.Sizes[topology.RoleWeb].Quantile(0.5), "web-pkt-p50-B")
	b.ReportMetric(100*res.BimodalFrac[topology.RoleHadoop], "hadoop-bimodal-%")
}

func BenchmarkFigure13_OnOff(b *testing.B) {
	s := benchSystem()
	var res *core.Figure13Result
	for i := 0; i < b.N; i++ {
		res = s.Figure13()
	}
	printOnce("figure13", res.Render())
	b.ReportMetric(100*res.FacebookScore15, "fb-empty-bins-%")
	b.ReportMetric(100*res.BaselineScore15, "baseline-empty-bins-%")
}

func BenchmarkFigure14_FlowInterarrival(b *testing.B) {
	s := benchSystem()
	var res *core.Figure14Result
	for i := 0; i < b.N; i++ {
		res = s.Figure14()
	}
	printOnce("figure14", res.Render())
	b.ReportMetric(res.Gaps[topology.RoleWeb].Quantile(0.5)/1000, "web-syn-gap-p50-ms")
	b.ReportMetric(res.Gaps[topology.RoleCacheFollower].Quantile(0.5)/1000, "cache-syn-gap-p50-ms")
}

func BenchmarkFigure15_BufferOccupancy(b *testing.B) {
	s := benchSystem()
	cfg := core.DefaultFigure15Config()
	cfg.Windows = 8
	var res *core.Figure15Result
	for i := 0; i < b.N; i++ {
		res = s.Figure15(cfg)
	}
	printOnce("figure15", res.Render())
	b.ReportMetric(core.MaxOf(res.WebMax), "web-occ-peak-frac")
	b.ReportMetric(100*core.MaxOf(res.WebUtil), "web-edge-util-%")
}

func BenchmarkFigure16_ConcurrentRacks(b *testing.B) {
	s := benchSystem()
	var res *core.ConcurrencyResult
	for i := 0; i < b.N; i++ {
		res = s.Figure16And17()
	}
	printOnce("figure1617", res.Render())
	b.ReportMetric(res.RacksAll[topology.RoleCacheFollower].Quantile(0.5), "cache-racks-5ms-p50")
	b.ReportMetric(res.RacksAll[topology.RoleWeb].Quantile(0.5), "web-racks-5ms-p50")
}

func BenchmarkFigure17_ConcurrentHHRacks(b *testing.B) {
	s := benchSystem()
	var res *core.ConcurrencyResult
	for i := 0; i < b.N; i++ {
		res = s.Figure16And17()
	}
	printOnce("figure1617", res.Render())
	b.ReportMetric(res.HHAll[topology.RoleCacheFollower].Quantile(0.5), "cache-HH-racks-p50")
}

func BenchmarkAblation_LoadBalancing(b *testing.B) {
	s := benchSystem()
	var res *core.AblationResult
	for i := 0; i < b.N; i++ {
		res = s.AblationLoadBalancing()
	}
	printOnce("abl-lb", res.Render())
	b.ReportMetric(res.On, "on")
	b.ReportMetric(res.Off, "off")
}

func BenchmarkAblation_ConnectionPooling(b *testing.B) {
	s := benchSystem()
	var res *core.AblationResult
	for i := 0; i < b.N; i++ {
		res = s.AblationConnectionPooling()
	}
	printOnce("abl-pool", res.Render())
	b.ReportMetric(res.On, "on")
	b.ReportMetric(res.Off, "off")
}

func BenchmarkAblation_HotObjectMitigation(b *testing.B) {
	s := benchSystem()
	var res *core.AblationResult
	for i := 0; i < b.N; i++ {
		res = s.AblationHotObjectMitigation()
	}
	printOnce("abl-hot", res.Render())
	b.ReportMetric(res.On, "on")
	b.ReportMetric(res.Off, "off")
}

func BenchmarkAblation_RackPlacement(b *testing.B) {
	s := benchSystem()
	var res *core.AblationResult
	for i := 0; i < b.N; i++ {
		res = s.AblationRackPlacement()
	}
	printOnce("abl-place", res.Render())
	b.ReportMetric(res.On, "on")
	b.ReportMetric(res.Off, "off")
}

// BenchmarkBaseline_Literature runs the Table 1 contrast: the literature
// workload through the same analyses as the Facebook-style workload.
func BenchmarkBaseline_Literature(b *testing.B) {
	s := benchSystem()
	host := s.Monitored(topology.RoleHadoop)
	var onoff float64
	var concurrent float64
	for i := 0; i < b.N; i++ {
		arr := analysis.NewArrivals(s.Topo.Addr(host), 15*netsim.Millisecond)
		conc := analysis.NewConcurrency(s.Topo, host, analysis.ConcurrencyWindow)
		baseline.Generate(s.Topo, host, 1, baseline.DefaultOnOffParams(),
			5*netsim.Second, workload.Fanout{workload.CollectorFunc(arr.Packet), workload.CollectorFunc(conc.Packet)})
		conc.Finish()
		onoff = arr.OnOffScore(15 * netsim.Millisecond)
		concurrent = conc.Hosts().Quantile(0.5)
	}
	printOnce("baseline", fmt.Sprintf(
		"Literature baseline: on/off empty-bin fraction %.2f, median concurrent hosts %.0f (<5 per [8])",
		onoff, concurrent))
	b.ReportMetric(100*onoff, "empty-bins-%")
	b.ReportMetric(concurrent, "concurrent-hosts-p50")
}

// BenchmarkTraceGeneration measures raw generator throughput.
func BenchmarkTraceGeneration(b *testing.B) {
	s := benchSystem()
	n := int64(0)
	for i := 0; i < b.N; i++ {
		bundle := s.Trace(topology.RoleWeb, s.Cfg.ShortTraceSec)
		n = bundle.Packets
	}
	b.ReportMetric(float64(n), "pkts-per-trace")
}

// BenchmarkExtension_Incast sweeps synchronized fan-in through the ToR —
// the microburst experiment the paper's methodology could not run (§7).
func BenchmarkExtension_Incast(b *testing.B) {
	s := benchSystem()
	var res *core.IncastResult
	for i := 0; i < b.N; i++ {
		res = s.ExtensionIncast([]int{1, 4, 16}, 64<<10, 256<<10)
	}
	printOnce("ext-incast", res.Render())
	last := res.Points[len(res.Points)-1]
	b.ReportMetric(last.QueuePeak, "peak-buffer-frac")
	b.ReportMetric(float64(last.Dropped), "drops")
}

// BenchmarkExtension_Oversubscription quantifies §4.4's "variable degrees
// of oversubscription" implication.
func BenchmarkExtension_Oversubscription(b *testing.B) {
	s := benchSystem()
	var res *core.OversubResult
	for i := 0; i < b.N; i++ {
		res = s.ExtensionOversubscription(topology.RoleHadoop, []float64{1, 10, 40}, 2)
	}
	printOnce("ext-oversub", res.Render())
	b.ReportMetric(res.Points[len(res.Points)-1].DropFrac, "drop-frac-at-40x")
}

// BenchmarkExtension_Fabric checks §4.3's claim that Fabric pods carry
// the same Frontend traffic structure as 4-post clusters.
func BenchmarkExtension_Fabric(b *testing.B) {
	s := benchSystem()
	var res *core.FabricResult
	for i := 0; i < b.N; i++ {
		res = s.ExtensionFabric()
	}
	printOnce("ext-fabric", res.Render())
	b.ReportMetric(res.Similarity, "matrix-cosine")
}

// BenchmarkSection52_HotObjects runs the §5.2 object-popularity model:
// top-50 stability across servers with minutes-scale membership churn.
func BenchmarkSection52_HotObjects(b *testing.B) {
	s := benchSystem()
	var res *core.Section52Result
	for i := 0; i < b.N; i++ {
		res = s.Section52()
	}
	printOnce("section52", res.Render())
	b.ReportMetric(res.MedianLifespanSec, "top50-lifespan-s")
	b.ReportMetric(res.CrossServerSimilarity, "cross-server-sim")
}

// BenchmarkBaseline_PacketTrains contrasts train lengths (Kapoor et al.
// [27]): literature traffic sends long same-destination trains; request
// multiplexing keeps Facebook-style trains short.
func BenchmarkBaseline_PacketTrains(b *testing.B) {
	s := benchSystem()
	host := s.Monitored(topology.RoleCacheFollower)
	addr := s.Topo.Addr(host)
	var fb, lit float64
	for i := 0; i < b.N; i++ {
		fbT := analysis.NewTrains(addr, netsim.Millisecond)
		litT := analysis.NewTrains(s.Topo.Addr(s.Monitored(topology.RoleHadoop)), netsim.Millisecond)
		baseline.Generate(s.Topo, s.Monitored(topology.RoleHadoop), 3,
			baseline.DefaultOnOffParams(), 3*netsim.Second, workload.CollectorFunc(litT.Packet))
		litT.Finish()
		// Short live window for the Facebook side.
		genTraceInto(s, topology.RoleCacheFollower, 3, fbT)
		fbT.Finish()
		fb = fbT.Lengths().Quantile(0.9)
		lit = litT.Lengths().Quantile(0.9)
	}
	printOnce("trains", fmt.Sprintf(
		"Packet trains (p90 length, 1-ms gap): Facebook-style %.0f vs literature %.0f pkts", fb, lit))
	b.ReportMetric(fb, "fb-train-p90")
	b.ReportMetric(lit, "lit-train-p90")
}

// BenchmarkEngineScheduling measures the event engine's schedule/dispatch
// hot path: batches of events pushed and drained through the heap. With
// the typed inlined heap this runs at zero heap allocations per event
// (the boxed container/heap implementation paid one interface{} box per
// Push); allocs/op verifies that.
func BenchmarkEngineScheduling(b *testing.B) {
	const batch = 1024
	var e netsim.Engine
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := e.Now()
		for j := 0; j < batch; j++ {
			// Reverse-sorted inserts with same-time ties: the worst case
			// for sift-up and a determinism stress for the seq tie-break.
			e.At(base+netsim.Time((batch-j)%97), fn)
		}
		e.Run(base + 100)
	}
	b.ReportMetric(batch, "events/op")
}

// BenchmarkFleetDataset_Parallel measures the sharded fleet collector at
// several worker widths. The output is bit-identical at every width (see
// TestFleetDatasetWorkerInvariance); only wall-clock may differ, and on a
// single-core host the widths should be within noise of each other — the
// scheduling layer must not cost anything when it cannot help.
func BenchmarkFleetDataset_Parallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := core.QuickConfig()
			cfg.Taggers = workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// Fresh System each iteration: FleetDataset memoizes.
				core.MustNewSystem(cfg).FleetDataset()
			}
		})
	}
}

var (
	pipeOnce    sync.Once
	pipeBatches [][]packet.Header
	pipeHost    topology.HostID
	pipeCount   int
)

// pipelineStream synthesizes (once per run) a canned ~1M-header monitored
// web-host stream, pre-split into collector-sized batches, so the analysis
// benchmark measures consumption only, never generation.
func pipelineStream(s *core.System) [][]packet.Header {
	pipeOnce.Do(func() {
		const batchLen = 512
		pipeHost = s.Monitored(topology.RoleWeb)
		var hdrs []packet.Header
		// ~15.5k headers/s at tiny scale: 65 s lands just over 2^20.
		genTraceInto(s, topology.RoleWeb, 65, workload.CollectorFunc(func(h packet.Header) {
			hdrs = append(hdrs, h)
		}))
		pipeCount = len(hdrs)
		for len(hdrs) > 0 {
			n := min(batchLen, len(hdrs))
			pipeBatches = append(pipeBatches, hdrs[:n])
			hdrs = hdrs[n:]
		}
	})
	return pipeBatches
}

// BenchmarkAnalysisPipeline measures the batched analysis consumers —
// packed-key flow table, heavy-hitter bins, locality series — over the
// canned million-header stream. This is the per-packet hot path the
// profile showed dominating the suite; allocs/op is the zero-allocation
// regression gate for it.
func BenchmarkAnalysisPipeline(b *testing.B) {
	s := benchSystem()
	batches := pipelineStream(s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flows := analysis.NewFlows(s.Topo, pipeHost)
		hh := analysis.NewHeavyHitters(s.Topo, pipeHost, analysis.LevelFlow, netsim.Millisecond)
		loc := analysis.NewLocalitySeries(s.Topo, pipeHost)
		for _, batch := range batches {
			flows.Packets(batch)
			hh.Packets(batch)
			loc.Packets(batch)
		}
		hh.Finish()
	}
	b.ReportMetric(float64(pipeCount), "pkts/op")
}

// BenchmarkTelemetryFabric measures the fabric delivery hot path with
// telemetry detached — the nil-sink fast path every non-telemetry
// experiment rides — and with a rate-1 sink attached (full per-hop
// recording). The off arm is the regression gate (BENCH_PR5.json): the
// fabric must not pay for instrumentation it does not use; the sampled
// arm is reported for scale only.
func BenchmarkTelemetryFabric(b *testing.B) {
	topo := topology.MustBuild(topology.Preset(topology.ScaleTiny))
	hosts := topo.NumHosts()
	run := func(b *testing.B, rate float64) {
		const pkts = 4096
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng := &netsim.Engine{}
			f := netsim.NewFabric(eng, topo, netsim.DefaultFabricConfig())
			if rate > 0 {
				f.AttachTelemetry(telemetry.NewSink(42, rate))
			}
			for j := 0; j < pkts; j++ {
				src := topology.HostID(j % hosts)
				dst := topology.HostID((j*31 + 17) % hosts)
				if src == dst {
					dst = (dst + 1) % topology.HostID(hosts)
				}
				f.Inject(packet.Header{
					Key: packet.FlowKey{
						Src: topo.Addr(src), Dst: topo.Addr(dst),
						SrcPort: uint16(1024 + j), DstPort: 80, Proto: packet.TCP,
					},
					Size: 1500,
				})
			}
			eng.Run(netsim.Second)
		}
		b.ReportMetric(pkts, "pkts/op")
	}
	b.Run("off", func(b *testing.B) { run(b, 0) })
	b.Run("sampled", func(b *testing.B) { run(b, 1) })
}

// BenchmarkSuite_ParallelSpeedup times the full dataset prewarm (every
// trace bundle plus the fleet dataset — the dominant cost of the suite)
// sequentially and at GOMAXPROCS width, and reports the ratio. On a
// multi-core host this is the headline speedup; on one core it reports
// ~1.0, confirming the parallel path has no sequential regression.
func BenchmarkSuite_ParallelSpeedup(b *testing.B) {
	cfgSeq := core.QuickConfig()
	cfgSeq.Parallelism, cfgSeq.Taggers = 1, 1
	cfgPar := core.QuickConfig()
	cfgPar.Parallelism, cfgPar.Taggers = 0, 0 // GOMAXPROCS
	var seq, par time.Duration
	for i := 0; i < b.N; i++ {
		start := time.Now()
		core.MustNewSystem(cfgSeq).Prewarm()
		seq += time.Since(start)
		start = time.Now()
		core.MustNewSystem(cfgPar).Prewarm()
		par += time.Since(start)
	}
	if par > 0 {
		b.ReportMetric(seq.Seconds()/par.Seconds(), "speedup-x")
	}
	b.ReportMetric(float64(cfgPar.Workers()), "workers")
}

// genTraceInto synthesizes a short fresh trace of one role into sink.
func genTraceInto(s *core.System, role topology.Role, seconds int64, sink workload.Collector) {
	host := s.Monitored(role)
	tr := services.NewTrace(s.Pick, host, 77, services.DefaultParams(), sink)
	tr.Run(netsim.Time(seconds) * netsim.Second)
}

// BenchmarkExtension_DayOverDay checks §4.3's day-over-day stability with
// an independently seeded second day.
func BenchmarkExtension_DayOverDay(b *testing.B) {
	s := benchSystem()
	var res *core.DayOverDayResult
	for i := 0; i < b.N; i++ {
		res = s.DayOverDay()
	}
	printOnce("dayoverday", res.Render())
	b.ReportMetric(100*res.MaxLocalityDelta, "max-locality-delta-%")
	b.ReportMetric(res.MatrixSimilarity, "matrix-cosine")
}

// BenchmarkBaseline_AllToAll contrasts the literature's uniform
// worst-case model against the measured workloads: no locality at all.
func BenchmarkBaseline_AllToAll(b *testing.B) {
	s := benchSystem()
	host := s.Monitored(topology.RoleHadoop)
	var rackFrac float64
	for i := 0; i < b.N; i++ {
		var rackB, total float64
		baseline.GenerateAllToAll(s.Topo, host, 5, baseline.DefaultAllToAllParams(),
			2*netsim.Second, workload.CollectorFunc(func(h packet.Header) {
				dst, ok := s.Topo.HostByAddr(h.Key.Dst)
				total += float64(h.Size)
				if ok && s.Topo.HostRack(dst) == s.Topo.HostRack(host) {
					rackB += float64(h.Size)
				}
			}))
		rackFrac = rackB / total
	}
	printOnce("alltoall", fmt.Sprintf(
		"All-to-all baseline: %.1f%% rack-local (vs 39%%+ for measured Hadoop, 0%% for Web) — no locality to exploit",
		100*rackFrac))
	b.ReportMetric(100*rackFrac, "rack-local-%")
}

// BenchmarkSketchPipeline gates the sketch-mode packet path: one second
// of a web host's mirror trace is captured into a slab, then pushed
// through the sketch-backed flow tracker per iteration. Steady-state
// throughput and the fixed table-state footprint both ride in the
// BENCH_PR7.json benchdiff gate; the exact tracker's footprint over the
// same slab is reported alongside for the memory-ratio narrative (the
// enforced ≥2x bound lives in internal/sketcherr at large scale).
func BenchmarkSketchPipeline(b *testing.B) {
	s := benchSystem()
	host := s.Monitored(topology.RoleWeb)
	var slab []packet.Header
	tr := services.NewTrace(s.Pick, host, 7, s.Cfg.Params,
		workload.CollectorFunc(func(h packet.Header) { slab = append(slab, h) }))
	tr.Run(netsim.Second)
	if len(slab) == 0 {
		b.Fatal("capture produced no packets")
	}
	hh := analysis.NewHeavyTracker(s.Topo, host, analysis.LevelFlow, netsim.Millisecond, true)
	hh.Packets(slab) // warm: all bin rolls and buffer growth happen here
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hh.Packets(slab)
	}
	b.StopTimer()
	hh.Finish()
	exact := analysis.NewHeavyTracker(s.Topo, host, analysis.LevelFlow, netsim.Millisecond, false)
	exact.Packets(slab)
	exact.Finish()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(slab)), "ns/pkt")
	b.ReportMetric(float64(hh.MemoryBytes()), "sketch-bytes")
	b.ReportMetric(float64(exact.MemoryBytes()), "exact-bytes-info")
}
