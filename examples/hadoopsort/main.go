// Hadoopsort watches a Hadoop node across job phases: quiet computation
// with only control traffic, then busy shuffle/output periods of short
// heavy-tailed transfers that stay inside the rack and cluster — the one
// workload in the paper that matches the prior literature (§4.2, Figs.
// 4a, 6c, 12, 13).
package main

import (
	"fmt"
	"log"

	"fbdcnet/internal/analysis"
	"fbdcnet/internal/core"
	"fbdcnet/internal/netsim"
	"fbdcnet/internal/render"
	"fbdcnet/internal/services"
	"fbdcnet/internal/topology"
	"fbdcnet/internal/workload"
)

func main() {
	sys, err := core.NewSystem(core.QuickConfig())
	if err != nil {
		log.Fatal(err)
	}
	host := sys.Monitored(topology.RoleHadoop)

	loc := analysis.NewLocalitySeries(sys.Topo, host)
	flows := analysis.NewFlows(sys.Topo, host)
	sizes := analysis.NewPacketSizes()
	arr := analysis.NewArrivals(sys.Topo.Addr(host), 100*netsim.Millisecond)

	p := services.DefaultParams()
	// Shorter phases so a 40-second run shows several busy/quiet cycles.
	p.HadoopBusyMeanSec, p.HadoopQuietMeanSec = 5, 7
	tr := services.NewTrace(sys.Pick, host, 3, p, workload.Fanout{loc, flows, sizes, arr})
	tr.Run(40 * netsim.Second)
	fmt.Printf("hadoop host %d: %d packets, %d flows over 40s\n\n", host, tr.Emitted(), flows.Count())

	fmt.Println("per-100ms packet arrivals (phases visible as quiet stretches):")
	fmt.Printf("  %s\n\n", render.Sparkline(arr.Bins(100*netsim.Millisecond)))

	fmt.Println("outbound locality (the paper's only rack-heavy service):")
	for _, l := range topology.Localities {
		fmt.Printf("  %-17s %5s%%\n", l, render.Pct(loc.Share()[l]))
	}

	_, sizeAll := flows.SizeCDF()
	_, durAll := flows.DurationCDF()
	fmt.Printf("\nflow sizes (KB):     %s\n", render.Quantiles(sizeAll))
	fmt.Printf("flow durations (ms): %s\n", render.Quantiles(durAll))
	fmt.Printf("flows under 10 KB: %.0f%% (paper: ≈70%%)\n", 100*sizeAll.FracBelow(10))

	s := sizes.Sample()
	bimodal := s.FracBelow(100) + (1 - s.FracBelow(1400))
	fmt.Printf("packet sizes: %.0f%% are ACK- or MTU-sized (the paper's bimodal Fig. 12)\n",
		100*bimodal)
}
