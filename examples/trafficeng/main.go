// Trafficeng asks the question of §5: can a traffic engineering system
// that identifies heavy hitters and treats them specially work on this
// workload? It measures heavy-hitter persistence at three aggregation
// levels and bin widths on a cache follower, compares against the
// literature's on/off workload where heavy hitters ARE stable, and prints
// the §5.4 verdict.
package main

import (
	"fmt"
	"log"

	"fbdcnet/internal/analysis"
	"fbdcnet/internal/baseline"
	"fbdcnet/internal/core"
	"fbdcnet/internal/netsim"
	"fbdcnet/internal/services"
	"fbdcnet/internal/topology"
	"fbdcnet/internal/workload"
)

func main() {
	sys, err := core.NewSystem(core.QuickConfig())
	if err != nil {
		log.Fatal(err)
	}
	host := sys.Monitored(topology.RoleCacheFollower)
	const seconds = 20

	// Heavy-hitter trackers at every (level, bin) pair.
	levels := []analysis.Level{analysis.LevelFlow, analysis.LevelHost, analysis.LevelRack}
	bins := []netsim.Time{netsim.Millisecond, 10 * netsim.Millisecond, 100 * netsim.Millisecond}
	hh := map[analysis.Level]map[netsim.Time]*analysis.HeavyHitters{}
	var sinks workload.Fanout
	for _, lvl := range levels {
		hh[lvl] = map[netsim.Time]*analysis.HeavyHitters{}
		for _, bin := range bins {
			tr := analysis.NewHeavyHitters(sys.Topo, host, lvl, bin)
			hh[lvl][bin] = tr
			sinks = append(sinks, tr)
		}
	}
	services.NewTrace(sys.Pick, host, 11, services.DefaultParams(), sinks).
		Run(seconds * netsim.Second)

	fmt.Println("cache follower: median % of heavy hitters persisting into the next interval")
	fmt.Printf("%-8s %10s %10s %10s\n", "level", "1ms", "10ms", "100ms")
	for _, lvl := range levels {
		fmt.Printf("%-8s", lvl)
		for _, bin := range bins {
			t := hh[lvl][bin]
			t.Finish()
			fmt.Printf(" %9.0f%%", t.Persistence().Quantile(0.5))
		}
		fmt.Println()
	}

	rack100 := hh[analysis.LevelRack][100*netsim.Millisecond].Persistence().Quantile(0.5)
	flow1 := hh[analysis.LevelFlow][netsim.Millisecond].Persistence().Quantile(0.5)
	fmt.Printf("\nonly rack-level 100-ms heavy hitters (%.0f%%) clear the 35%% predictability\n", rack100)
	fmt.Printf("bar prior work set for TE; flow-level 1-ms heavy hitters (%.0f%%) do not.\n\n", flow1)

	// Contrast: the literature's workload, where a handful of large
	// stable flows make heavy hitters trivially predictable.
	bl := analysis.NewHeavyHitters(sys.Topo, host, analysis.LevelFlow, 100*netsim.Millisecond)
	baseline.Generate(sys.Topo, host, 11, baseline.DefaultOnOffParams(),
		seconds/2*netsim.Second, workload.CollectorFunc(bl.Packet))
	bl.Finish()
	fmt.Printf("literature baseline flow-level persistence @100ms: %.0f%% — the regime\n",
		bl.Persistence().Quantile(0.5))
	fmt.Println("Hedera/MicroTE-style schemes were designed for. Facebook's load-balanced")
	fmt.Println("cache traffic removes that signal: heavy hitters are barely heavier than")
	fmt.Println("the median flow and churn every interval (§5.4).")
}
