// Quickstart: build a small synthetic Facebook-style datacenter, capture
// ten seconds of one Web server's traffic, and print where its bytes go —
// the smallest end-to-end use of the library.
package main

import (
	"fmt"
	"log"

	"fbdcnet/internal/analysis"
	"fbdcnet/internal/core"
	"fbdcnet/internal/netsim"
	"fbdcnet/internal/render"
	"fbdcnet/internal/services"
	"fbdcnet/internal/topology"
	"fbdcnet/internal/workload"
)

func main() {
	// 1. Build the datacenter: sites → buildings → clusters → racks.
	sys, err := core.NewSystem(core.QuickConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built fleet: %d hosts in %d racks, %d clusters, %d datacenters\n",
		sys.Topo.NumHosts(), len(sys.Topo.Racks), len(sys.Topo.Clusters), len(sys.Topo.Datacenters))

	// 2. Pick a monitored Web server and attach streaming analyses, the
	// way the paper attached a port mirror plus offline analysis.
	web := sys.Monitored(topology.RoleWeb)
	mix := analysis.NewServiceMix(sys.Topo, web)
	loc := analysis.NewLocalitySeries(sys.Topo, web)
	sizes := analysis.NewPacketSizes()

	// 3. Generate ten seconds of the Web server's bidirectional traffic.
	tr := services.NewTrace(sys.Pick, web, 1, services.DefaultParams(),
		workload.Fanout{mix, loc, sizes})
	tr.Run(10 * netsim.Second)
	fmt.Printf("captured %d packet headers from Web host %d\n\n", tr.Emitted(), web)

	// 4. Report: destination service mix (Table 2 style) ...
	fmt.Println("outbound bytes by destination service:")
	for _, role := range topology.Roles {
		if share := mix.Share()[role]; share > 0.001 {
			fmt.Printf("  %-8s %5s%%\n", role, render.Pct(share))
		}
	}

	// ... and locality (Figure 4 style).
	fmt.Println("outbound bytes by locality:")
	for _, l := range topology.Localities {
		fmt.Printf("  %-17s %5s%%\n", l, render.Pct(loc.Share()[l]))
	}
	fmt.Printf("median packet size: %.0f bytes (the paper's <200 B finding)\n",
		sizes.Sample().Quantile(0.5))
}
