// Webfrontend walks the life of an HTTP request through a Frontend
// cluster (Figure 2 of the paper): SLB → Web server → cache/Multifeed
// fan-out → reply toward the edge, and shows how the cluster's bipartite
// Web↔cache traffic matrix (Figure 5b) emerges from role-homogeneous rack
// placement.
package main

import (
	"fmt"
	"log"

	"fbdcnet/internal/analysis"
	"fbdcnet/internal/core"
	"fbdcnet/internal/fbflow"
	"fbdcnet/internal/netsim"
	"fbdcnet/internal/render"
	"fbdcnet/internal/rng"
	"fbdcnet/internal/services"
	"fbdcnet/internal/topology"
	"fbdcnet/internal/workload"
)

func main() {
	sys, err := core.NewSystem(core.QuickConfig())
	if err != nil {
		log.Fatal(err)
	}
	topo := sys.Topo
	fe := topo.ClustersOfType(topology.ClusterFrontend)[0]

	// The cluster's composition: mostly Web racks, some cache racks, a
	// few Multifeed and SLB racks (§3.1: racks hold one role).
	counts := map[topology.Role]int{}
	for _, rid := range topo.Clusters[fe].Racks {
		counts[topo.Racks[rid].Role]++
	}
	fmt.Printf("Frontend cluster %d racks by role: ", fe)
	for _, r := range topology.Roles {
		if counts[r] > 0 {
			fmt.Printf("%v=%d ", r, counts[r])
		}
	}
	fmt.Println()

	// Trace one Web server and one cache follower for 15 seconds and
	// reproduce their Table 2 rows.
	for _, role := range []topology.Role{topology.RoleWeb, topology.RoleCacheFollower} {
		host := sys.Monitored(role)
		mix := analysis.NewServiceMix(topo, host)
		arr := analysis.NewArrivals(topo.Addr(host))
		tr := services.NewTrace(sys.Pick, host, 7, services.DefaultParams(), workload.Fanout{mix, arr})
		tr.Run(15 * netsim.Second)
		fmt.Printf("\n%s host %d: %d packets, %d new flows\n", role, host, tr.Emitted(), arr.SYNCount())
		for _, dst := range topology.Roles {
			if share := mix.Share()[dst]; share > 0.005 {
				fmt.Printf("  → %-8s %5s%%\n", dst, render.Pct(share))
			}
		}
	}

	// Build the cluster's rack-to-rack matrix from fleet-mode flows
	// through the Fbflow pipeline: the bipartite Web↔cache pattern.
	ds := fbflow.NewDataset()
	pipe := fbflow.NewPipeline(topo, 2, ds.Add)
	r := rng.New(1)
	for _, rid := range topo.Clusters[fe].Racks {
		for i := 0; i < int(topo.Racks[rid].NumHosts); i++ {
			h := topo.Racks[rid].Host(i)
			sys.Pick.FleetFlows(services.DefaultParams(), r, h, 60, 1.0, 8,
				func(dst topology.HostID, bytes float64) {
					pipe.AddFlow(0, topo.Addr(h), topo.Addr(dst), bytes)
				})
		}
	}
	pipe.Close()
	fmt.Println()
	fmt.Print(render.Heatmap("Frontend rack-to-rack demand (Fig. 5b style; rows=src, cols=dst):",
		ds.RackMatrix(topo, fe)))
	fmt.Println("note the off-diagonal bands: Web racks talk to cache racks and vice versa,")
	fmt.Println("so almost nothing stays inside a rack — the paper's anti-rack-locality finding.")
}
