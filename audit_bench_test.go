package fbdcnet

import (
	"testing"

	"fbdcnet/internal/obs/audit"
)

// BenchmarkAuditLedger measures the full per-cell audit cost on the
// fleet emit path: folding a representative cell's worth of record
// items (64 sampled records × 6 words, the tiny-preset shape) into a
// stack-allocated streaming hash, then sealing it into the recorder's
// ledger. This runs once per (window, shard) cell next to the ~16 µs
// partial encode, so it must be allocation-free — the ledger reuses its
// slice across Reset cycles exactly like the serve loop does.
// BENCH_PR10.json gates ns/op; allocs/op must stay 0.
func BenchmarkAuditLedger(b *testing.B) {
	rec := audit.New()
	// Warm the ledger to its steady-state capacity, then Reset: appends
	// below reuse the slice, so the loop measures the fold + record cost
	// alone (testing.AllocsPerRun pins the same thing in the unit tests).
	const cellsPerRun = 4096
	for i := 0; i < cellsPerRun; i++ {
		rec.Append(audit.Checkpoint{Stage: audit.StageFleetCollect})
	}
	rec.Reset()
	cell := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var h audit.Hash
		for rec64 := 0; rec64 < 64; rec64++ {
			base := uint64(i + rec64)
			h.U64(base)       // minute
			h.U64(base >> 1)  // src
			h.U64(base >> 2)  // dst
			h.U64(base & 7)   // locality
			h.F64(float64(i)) // bytes
			h.F64(1500)       // packets
		}
		rec.Record(audit.StageFleetCollect, cell&1023, cell>>10, &h)
		cell++
		if cell == cellsPerRun {
			cell = 0
			rec.Reset()
		}
	}
}

// BenchmarkAuditBlackBox measures one structured breadcrumb into the
// crash ring: the cost every frame send, cell merge, and stage
// transition pays when -audit is on. The ring is fixed-size, so the
// steady state is a mutex hold plus one slot write — zero allocations.
func BenchmarkAuditBlackBox(b *testing.B) {
	bb := audit.NewBlackBox(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bb.Record(audit.EvCellMerge, audit.StageFleetCollect, int64(i&1023), int64(i>>10))
	}
}
