package fbdcnet

import (
	"runtime"
	"testing"

	"fbdcnet/internal/core"
	"fbdcnet/internal/obs"
	"fbdcnet/internal/services"
	"fbdcnet/internal/topology"
)

// fleetStateBytesPerHost measures the steady-state heap cost of the fleet
// state — topology plus the picker's precomputed peer sets — normalized per
// host. This is the number the struct-of-arrays layout is accountable for:
// BENCH_PR6.json records the pre- and post-refactor values on the large
// preset and benchdiff gates against regression.
func fleetStateBytesPerHost(s topology.Scale) (perHost float64, hosts int) {
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	topo := topology.MustBuild(topology.Preset(s))
	pick := services.NewPicker(topo)
	runtime.GC()
	runtime.ReadMemStats(&m1)
	hosts = topo.NumHosts()
	perHost = float64(m1.HeapAlloc-m0.HeapAlloc) / float64(hosts)
	runtime.KeepAlive(pick)
	return perHost, hosts
}

// BenchmarkTopologyFleetState reports heap bytes per host of the built
// fleet state at the large preset (138,240 hosts). ns/op covers the build
// cost; bytes/host is the layout metric gated by BENCH_PR6.json.
func BenchmarkTopologyFleetState(b *testing.B) {
	var perHost float64
	var hosts int
	for i := 0; i < b.N; i++ {
		perHost, hosts = fleetStateBytesPerHost(topology.ScaleLarge)
	}
	b.ReportMetric(perHost, "bytes/host")
	b.ReportMetric(float64(hosts), "hosts")
}

// BenchmarkFleetCollectXLarge runs one matrix-mode fleet collection
// window over the ~1.1M-host xlarge preset — the CI scale gate for the
// columnar layout plus vectorised traffic-matrix synthesis. Each op
// builds the system and collects one window; records/op and hosts are
// reported for context. BENCH_PR6.json gates the wall time.
func BenchmarkFleetCollectXLarge(b *testing.B) {
	var cells int64
	var hosts int
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		cfg.Scale = topology.ScaleXLarge
		cfg.Seed = 42
		cfg.FleetWindows = 1
		cfg.FleetWindowSec = 60
		cfg.FleetMatrix = true
		cfg.TraceSample = 0
		cfg.Obs = obs.NewRegistry()
		sys, err := core.NewSystem(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if ds := sys.FleetDataset(); ds.TotalBytes() <= 0 {
			b.Fatal("xlarge window produced no traffic")
		}
		cells = cfg.Obs.CounterValue("fbdcnet_fleet_matrix_cells_total")
		hosts = sys.Topo.NumHosts()
	}
	b.ReportMetric(float64(cells), "cells/op")
	b.ReportMetric(float64(hosts), "hosts")
}
