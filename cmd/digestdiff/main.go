// Command digestdiff compares the audit checkpoint ledgers of two run
// manifests and reports the first divergent checkpoint in canonical
// frontier order — the stage, cell, and blast radius of a determinism
// break. Two runs of the same binary, config, and seed must produce
// byte-identical ledgers regardless of worker or agent count; the first
// checkpoint that disagrees names the stage where the runs parted ways,
// and everything downstream of it is noise.
//
// Usage:
//
//	digestdiff A.json B.json
//	digestdiff -bisect -workers 8 A.json B.json
//
// With -bisect, a fleet-collect divergence is probed further: the named
// (window, shard) cell is re-run from manifest A's config at 1 tagger
// worker and at -workers taggers. A mismatch between the two arms means
// the cell's computation is scheduling-sensitive — a real determinism
// bug in this build. A match means both schedules agree, so the
// original divergence came from elsewhere (different binaries,
// corrupted manifest, or a planted perturbation).
//
// Exit status: 0 when the ledgers are identical, 1 on divergence, 2 on
// a missing or invalid audit section (or other operational error).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"fbdcnet/internal/core"
	"fbdcnet/internal/obs"
	"fbdcnet/internal/obs/audit"
)

// loadLedger reads a manifest and decodes its audit section into
// canonical-order checkpoints.
func loadLedger(path string) (*obs.Manifest, []audit.Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var m obs.Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, nil, fmt.Errorf("%s: %v", path, err)
	}
	cps, err := m.Audit.Decode()
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %v (was the run launched with -audit?)", path, err)
	}
	return &m, cps, nil
}

// bisect re-runs the divergent cell at 1 worker vs many and reports
// whether the divergence is scheduling-sensitive.
func bisect(m *obs.Manifest, d audit.Divergence, workers int) error {
	cp := d.A
	if d.Kind == "missing-in-a" {
		cp = d.B
	}
	if cp.Stage != audit.StageFleetCollect || cp.Window == audit.NonCell {
		return fmt.Errorf("bisect probes fleet-collect cells; first divergence is at stage %s", cp.Stage)
	}
	cfg, err := core.ConfigFromManifestMeta(m.Config)
	if err != nil {
		return err
	}
	fmt.Printf("bisect: re-running cell (window %d, shard %d) at 1 vs %d taggers...\n", cp.Window, cp.Shard, workers)
	res, err := core.AuditBisectCell(cfg, cp.Window, cp.Shard, workers)
	if err != nil {
		return err
	}
	if res.Match {
		fmt.Printf("bisect: cell (%d,%d) agrees at 1 and %d workers (hash %016x, count %d)\n",
			res.Window, res.Shard, res.Workers, res.One.Sum, res.One.Count)
		fmt.Println("bisect: the cell is schedule-stable in this build; the divergence came from outside the scheduler (different binaries, corrupted manifest, or a planted perturbation)")
		return nil
	}
	fmt.Printf("bisect: cell (%d,%d) DISAGREES between 1 worker (hash %016x, count %d) and %d workers (hash %016x, count %d)\n",
		res.Window, res.Shard, res.One.Sum, res.One.Count, res.Workers, res.Many.Sum, res.Many.Count)
	fmt.Println("bisect: the cell's computation is scheduling-sensitive — a determinism bug in this build")
	return nil
}

func main() {
	doBisect := flag.Bool("bisect", false, "re-run the divergent fleet-collect cell at 1 worker vs -workers and report whether it is scheduling-sensitive")
	workers := flag.Int("workers", 0, "tagger count of the bisect probe's parallel arm (0 = GOMAXPROCS)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: digestdiff [-bisect [-workers N]] A.json B.json")
		os.Exit(2)
	}
	pathA, pathB := flag.Arg(0), flag.Arg(1)
	mA, cpsA, err := loadLedger(pathA)
	if err != nil {
		fmt.Fprintf(os.Stderr, "digestdiff: %v\n", err)
		os.Exit(2)
	}
	_, cpsB, err := loadLedger(pathB)
	if err != nil {
		fmt.Fprintf(os.Stderr, "digestdiff: %v\n", err)
		os.Exit(2)
	}
	d, diverged := audit.Diff(cpsA, cpsB)
	if !diverged {
		fmt.Printf("digestdiff: ledgers identical (%d checkpoints)\n", len(cpsA))
		return
	}
	fmt.Printf("digestdiff: first divergence at %s\n", d.String())
	fmt.Printf("digestdiff: A=%s B=%s\n", pathA, pathB)
	if *doBisect {
		if err := bisect(mA, d, *workers); err != nil {
			fmt.Fprintf(os.Stderr, "digestdiff: bisect: %v\n", err)
		}
	}
	os.Exit(1)
}
