// Command manifestcheck validates a run manifest (written by
// cmd/experiments or cmd/dcsim via -manifest) against the canonical
// schema embedded in internal/obs. CI runs it after the smoke suite so a
// manifest field drifting from the schema fails the build instead of
// silently shipping malformed telemetry.
//
// Usage:
//
//	manifestcheck run_manifest.json [more.json ...]
//
// Exit status is 0 when every file validates, 1 otherwise.
package main

import (
	"fmt"
	"os"

	"fbdcnet/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: manifestcheck MANIFEST.json [...]")
		os.Exit(2)
	}
	bad := 0
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "manifestcheck: %v\n", err)
			bad++
			continue
		}
		if err := obs.ValidateSchema(obs.ManifestSchema, data); err != nil {
			fmt.Fprintf(os.Stderr, "manifestcheck: %s: %v\n", path, err)
			bad++
			continue
		}
		fmt.Printf("manifestcheck: %s ok\n", path)
	}
	if bad > 0 {
		os.Exit(1)
	}
}
