// Command manifestcheck validates a run manifest (written by
// cmd/experiments or cmd/dcsim via -manifest) against the canonical
// schema embedded in internal/obs. CI runs it after the smoke suite so a
// manifest field drifting from the schema fails the build instead of
// silently shipping malformed telemetry.
//
// When the manifest's config carries a positive mem_ceiling_bytes stamp,
// manifestcheck also asserts the recorded fleet heap peak
// (fbdcnet_fleet_heap_peak_bytes gauge) stayed under the ceiling — the
// CI memory gate for million-host runs.
//
// With -trace the arguments are Chrome trace-event JSON files (written
// via -trace-out) and each is structurally validated instead.
//
// With -audit each manifest must additionally carry a decodable audit
// checkpoint ledger — the gate CI applies to runs launched with -audit,
// so a run that silently dropped its ledger fails the build.
//
// Usage:
//
//	manifestcheck run_manifest.json [more.json ...]
//	manifestcheck -trace run_trace.json [more.json ...]
//	manifestcheck -audit run_manifest.json [more.json ...]
//
// Exit status is 0 when every file validates, 1 otherwise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"fbdcnet/internal/obs"
	"fbdcnet/internal/obs/export"
)

// heapPeakGauge is the gauge the fleet collector records after merging
// the dataset; see core.collectFleet.
const heapPeakGauge = "fbdcnet_fleet_heap_peak_bytes"

// checkMemCeiling enforces the manifest's own memory budget. A missing
// ceiling (or a ceiling of zero) means no budget was set; a set ceiling
// with no recorded heap peak is an error — the gate must not pass
// vacuously when the fleet stage did not run or observability was off.
func checkMemCeiling(m *obs.Manifest) error {
	raw, ok := m.Config["mem_ceiling_bytes"]
	if !ok {
		return nil
	}
	ceiling, ok := raw.(float64) // JSON numbers decode as float64
	if !ok || ceiling <= 0 {
		return nil
	}
	peak, ok := m.Gauges[heapPeakGauge]
	if !ok {
		return fmt.Errorf("mem_ceiling_bytes=%d set but %s gauge absent", int64(ceiling), heapPeakGauge)
	}
	if peak > ceiling {
		return fmt.Errorf("fleet heap peak %.0f bytes exceeds ceiling %d", peak, int64(ceiling))
	}
	return nil
}

func main() {
	trace := flag.Bool("trace", false, "arguments are Chrome trace-event JSON files; validate their structure instead of the manifest schema")
	auditReq := flag.Bool("audit", false, "require a valid audit checkpoint ledger in each manifest (fails manifests written without -audit)")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: manifestcheck [-trace] FILE.json [...]")
		os.Exit(2)
	}
	bad := 0
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "manifestcheck: %v\n", err)
			bad++
			continue
		}
		if *trace {
			if err := export.Validate(data); err != nil {
				fmt.Fprintf(os.Stderr, "manifestcheck: %s: %v\n", path, err)
				bad++
				continue
			}
			fmt.Printf("manifestcheck: %s ok (trace)\n", path)
			continue
		}
		if err := obs.ValidateSchema(obs.ManifestSchema, data); err != nil {
			fmt.Fprintf(os.Stderr, "manifestcheck: %s: %v\n", path, err)
			bad++
			continue
		}
		var m obs.Manifest
		if err := json.Unmarshal(data, &m); err != nil {
			fmt.Fprintf(os.Stderr, "manifestcheck: %s: %v\n", path, err)
			bad++
			continue
		}
		if err := checkMemCeiling(&m); err != nil {
			fmt.Fprintf(os.Stderr, "manifestcheck: %s: %v\n", path, err)
			bad++
			continue
		}
		if *auditReq {
			cps, err := m.Audit.Decode()
			if err != nil {
				fmt.Fprintf(os.Stderr, "manifestcheck: %s: %v\n", path, err)
				bad++
				continue
			}
			fmt.Printf("manifestcheck: %s ok (audit: %d checkpoints, %d holes)\n", path, len(cps), m.Audit.Holes)
			continue
		}
		fmt.Printf("manifestcheck: %s ok\n", path)
	}
	if bad > 0 {
		os.Exit(1)
	}
}
