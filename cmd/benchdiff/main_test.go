package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: fbdcnet
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkEngineScheduling-4         	   10000	    110452 ns/op	     296 B/op	       0 allocs/op
BenchmarkEngineScheduling-4         	   10000	    109000 ns/op	     296 B/op	       0 allocs/op
BenchmarkFleetDataset_Parallel/workers=1-4 	      30	  39535064 ns/op
BenchmarkFleetDataset_Parallel/workers=2-4 	      33	  34872426 ns/op
BenchmarkSuite_ParallelSpeedup 	       1	1234567890 ns/op
PASS
ok  	fbdcnet	12.3s
`

func TestParseBenchOutput(t *testing.T) {
	got, err := parseBenchOutput(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	// Repeated benchmark keeps the fastest run; the un-suffixed name (no
	// -N) parses too.
	want := map[string]float64{
		"BenchmarkEngineScheduling":                109000,
		"BenchmarkFleetDataset_Parallel/workers=1": 39535064,
		"BenchmarkFleetDataset_Parallel/workers=2": 34872426,
		"BenchmarkSuite_ParallelSpeedup":           1234567890,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(got), len(want), got)
	}
	for name, ns := range want {
		if got[name] != ns {
			t.Errorf("%s = %v, want %v", name, got[name], ns)
		}
	}
}

func TestLoadBaselinesPRSchema(t *testing.T) {
	base, err := loadBaselines(filepath.Join("..", "..", "BENCH_PR1.json"))
	if err != nil {
		t.Fatal(err)
	}
	if got := base["BenchmarkEngineScheduling"]; got != 110452 {
		t.Errorf("engine scheduling baseline %v, want 110452", got)
	}
	if got := base["BenchmarkFleetDataset_Parallel/workers=2"]; got != 34872426 {
		t.Errorf("fleet workers=2 baseline %v, want 34872426", got)
	}
}

func TestLoadBaselinesGenericSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "base.json")
	if err := os.WriteFile(path, []byte(`{"baselines": {"BenchmarkX": 1000}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	base, err := loadBaselines(path)
	if err != nil {
		t.Fatal(err)
	}
	if base["BenchmarkX"] != 1000 {
		t.Fatalf("generic baseline = %v, want 1000", base["BenchmarkX"])
	}
}

func writeManifest(t *testing.T, name string, stages map[string]float64) string {
	t.Helper()
	var b strings.Builder
	b.WriteString(`{"schema_version": 1, "stages": [`)
	first := true
	for stage, wall := range stages {
		if !first {
			b.WriteString(",")
		}
		first = false
		fmt.Fprintf(&b, `{"name": %q, "runs": 1, "wall_seconds": %g, "cpu_seconds": 0, "allocs": 0, "alloc_bytes": 0}`, stage, wall)
	}
	b.WriteString(`]}`)
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestManifestStages(t *testing.T) {
	path := writeManifest(t, "m.json", map[string]float64{"prewarm": 2.5, "suite:table3": 0.4})
	got, err := manifestStages(path)
	if err != nil {
		t.Fatal(err)
	}
	if got["prewarm"] != 2.5 || got["suite:table3"] != 0.4 {
		t.Fatalf("stages = %v", got)
	}
	if _, err := manifestStages(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file: want error")
	}
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, []byte(`{"stages": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := manifestStages(empty); err == nil {
		t.Error("empty stages: want error")
	}
}

func TestCompareStages(t *testing.T) {
	base := map[string]float64{
		"prewarm":       10.0,
		"suite:table3":  1.0,
		"suite:removed": 2.0,
		"tiny":          0.01, // below the 0.05s floor: skipped
	}
	cur := map[string]float64{
		"prewarm":      10.5, // +5%: fine
		"suite:table3": 1.5,  // +50%: regression at 20%
		"suite:added":  3.0,  // only in current: skipped
		"tiny":         0.04,
	}
	ds := compareStages(cur, base, 0.05)
	if len(ds) != 2 {
		t.Fatalf("compared %d stages, want 2: %v", len(ds), ds)
	}
	var regressed []string
	for _, d := range ds {
		if d.Ratio > 1.20 {
			regressed = append(regressed, d.Name)
		}
	}
	if len(regressed) != 1 || regressed[0] != "suite:table3" {
		t.Fatalf("regressions = %v, want [suite:table3]", regressed)
	}
}

func TestDiffManifests(t *testing.T) {
	base := writeManifest(t, "base.json", map[string]float64{"prewarm": 10, "suite:table3": 1})
	cur := writeManifest(t, "cur.json", map[string]float64{"prewarm": 10.5, "suite:table3": 1.5})
	n, err := diffManifests(base, cur, 0.20, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("regressed = %d, want 1", n)
	}
	// Disjoint stage sets have nothing to compare: that's an error, not a pass.
	other := writeManifest(t, "other.json", map[string]float64{"unrelated": 1})
	if _, err := diffManifests(base, other, 0.20, 0.05); err == nil {
		t.Error("disjoint manifests: want error")
	}
}

func TestMissingBaselines(t *testing.T) {
	baselines := map[string]float64{
		"BenchmarkPartialEncode": 100,
		"BenchmarkPartialDecode": 200,
	}
	if m := missingBaselines("", baselines); m != nil {
		t.Fatalf("empty require reported missing keys: %v", m)
	}
	if m := missingBaselines("BenchmarkPartialEncode, BenchmarkPartialDecode", baselines); m != nil {
		t.Fatalf("satisfied require reported missing keys: %v", m)
	}
	got := missingBaselines("BenchmarkPartialDecode,BenchmarkZ,BenchmarkA", baselines)
	if len(got) != 2 || got[0] != "BenchmarkA" || got[1] != "BenchmarkZ" {
		t.Fatalf("missing = %v, want sorted [BenchmarkA BenchmarkZ]", got)
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	baselines := map[string]float64{
		"BenchmarkA":              1000,
		"BenchmarkB":              1000,
		"BenchmarkOnlyInBaseline": 1,
	}
	measured := map[string]float64{
		"BenchmarkA":              1300, // +30%: regression at 20% threshold
		"BenchmarkB":              1100, // +10%: fine
		"BenchmarkOnlyInMeasured": 5,
	}
	ds := compare(measured, baselines)
	if len(ds) != 2 {
		t.Fatalf("compared %d benchmarks, want 2 (unmatched sides ignored): %v", len(ds), ds)
	}
	const threshold = 0.20
	var regressed []string
	for _, d := range ds {
		if d.Ratio > 1+threshold {
			regressed = append(regressed, d.Name)
		}
	}
	if len(regressed) != 1 || regressed[0] != "BenchmarkA" {
		t.Fatalf("regressions = %v, want [BenchmarkA]", regressed)
	}
}
