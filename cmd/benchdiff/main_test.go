package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: fbdcnet
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkEngineScheduling-4         	   10000	    110452 ns/op	     296 B/op	       0 allocs/op
BenchmarkEngineScheduling-4         	   10000	    109000 ns/op	     296 B/op	       0 allocs/op
BenchmarkFleetDataset_Parallel/workers=1-4 	      30	  39535064 ns/op
BenchmarkFleetDataset_Parallel/workers=2-4 	      33	  34872426 ns/op
BenchmarkSuite_ParallelSpeedup 	       1	1234567890 ns/op
PASS
ok  	fbdcnet	12.3s
`

func TestParseBenchOutput(t *testing.T) {
	got, err := parseBenchOutput(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	// Repeated benchmark keeps the fastest run; the un-suffixed name (no
	// -N) parses too.
	want := map[string]float64{
		"BenchmarkEngineScheduling":                109000,
		"BenchmarkFleetDataset_Parallel/workers=1": 39535064,
		"BenchmarkFleetDataset_Parallel/workers=2": 34872426,
		"BenchmarkSuite_ParallelSpeedup":           1234567890,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(got), len(want), got)
	}
	for name, ns := range want {
		if got[name] != ns {
			t.Errorf("%s = %v, want %v", name, got[name], ns)
		}
	}
}

func TestLoadBaselinesPRSchema(t *testing.T) {
	base, err := loadBaselines(filepath.Join("..", "..", "BENCH_PR1.json"))
	if err != nil {
		t.Fatal(err)
	}
	if got := base["BenchmarkEngineScheduling"]; got != 110452 {
		t.Errorf("engine scheduling baseline %v, want 110452", got)
	}
	if got := base["BenchmarkFleetDataset_Parallel/workers=2"]; got != 34872426 {
		t.Errorf("fleet workers=2 baseline %v, want 34872426", got)
	}
}

func TestLoadBaselinesGenericSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "base.json")
	if err := os.WriteFile(path, []byte(`{"baselines": {"BenchmarkX": 1000}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	base, err := loadBaselines(path)
	if err != nil {
		t.Fatal(err)
	}
	if base["BenchmarkX"] != 1000 {
		t.Fatalf("generic baseline = %v, want 1000", base["BenchmarkX"])
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	baselines := map[string]float64{
		"BenchmarkA":              1000,
		"BenchmarkB":              1000,
		"BenchmarkOnlyInBaseline": 1,
	}
	measured := map[string]float64{
		"BenchmarkA":              1300, // +30%: regression at 20% threshold
		"BenchmarkB":              1100, // +10%: fine
		"BenchmarkOnlyInMeasured": 5,
	}
	ds := compare(measured, baselines)
	if len(ds) != 2 {
		t.Fatalf("compared %d benchmarks, want 2 (unmatched sides ignored): %v", len(ds), ds)
	}
	const threshold = 0.20
	var regressed []string
	for _, d := range ds {
		if d.Ratio > 1+threshold {
			regressed = append(regressed, d.Name)
		}
	}
	if len(regressed) != 1 || regressed[0] != "BenchmarkA" {
		t.Fatalf("regressions = %v, want [BenchmarkA]", regressed)
	}
}
