// Command benchdiff compares `go test -bench` output against a checked-in
// baseline file and fails (exit 1) when any benchmark regressed beyond a
// threshold. CI pipes the engine-scheduling and fleet-dataset benchmarks
// through it so performance regressions block merges the same way broken
// tests do.
//
// Usage:
//
//	go test -run '^$' -bench 'EngineScheduling|FleetDataset_Parallel' . | \
//	    benchdiff -baseline BENCH_PR1.json -threshold 0.20
//
// The baseline file may be the PR-1 bench report (its engine_scheduling
// and fleet_dataset_parallel sections are understood) or a generic
// {"baselines": {"BenchmarkName": ns_per_op}} map.
//
// Given a pair of run manifests (see internal/obs), benchdiff also diffs
// their per-stage wall times, flagging stages that regressed beyond
// -stage-threshold:
//
//	benchdiff -manifest-baseline old_manifest.json -manifest-current run_manifest.json
//
// Manifest mode and bench mode can run together; either regressing fails
// the invocation. With only the manifest pair given, stdin is not read.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches one result line of `go test -bench` output, capturing
// the benchmark name (GOMAXPROCS suffix stripped) and its ns/op.
var benchLine = regexp.MustCompile(`^(Benchmark[^\s]+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(.*)$`)

// metricPair matches one custom ReportMetric value on a bench line, e.g.
// "5.841 bytes/host". Units are arbitrary non-space tokens.
var metricPair = regexp.MustCompile(`([0-9.eE+-]+)\s+([^\s]+)`)

// parseBenchOutput extracts ns/op per benchmark from go test -bench
// output, plus every custom b.ReportMetric value under the key
// "BenchmarkName:unit" (e.g. "BenchmarkTopologyFleetState:bytes/host").
// Repeated runs of one benchmark keep the lowest (least noisy)
// observation per metric.
func parseBenchOutput(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	record := func(key string, v float64) {
		if prev, ok := out[key]; !ok || v < prev {
			out[key] = v
		}
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchdiff: bad ns/op in %q: %v", sc.Text(), err)
		}
		record(m[1], ns)
		for _, mm := range metricPair.FindAllStringSubmatch(m[3], -1) {
			v, err := strconv.ParseFloat(mm[1], 64)
			if err != nil || mm[2] == "B/op" || mm[2] == "allocs/op" {
				continue
			}
			record(m[1]+":"+mm[2], v)
		}
	}
	return out, sc.Err()
}

// prBenchReport is the subset of the PR-1 bench report schema benchdiff
// understands.
type prBenchReport struct {
	Baselines        map[string]float64 `json:"baselines"`
	EngineScheduling struct {
		After struct {
			NsPerOp float64 `json:"ns_per_op"`
		} `json:"after"`
	} `json:"engine_scheduling"`
	FleetDatasetParallel struct {
		NsPerOp map[string]float64 `json:"ns_per_op"`
	} `json:"fleet_dataset_parallel"`
}

// loadBaselines reads a baseline file into benchmark-name → ns/op.
func loadBaselines(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep prBenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("benchdiff: parsing %s: %v", path, err)
	}
	base := make(map[string]float64)
	for name, ns := range rep.Baselines {
		base[name] = ns
	}
	if ns := rep.EngineScheduling.After.NsPerOp; ns > 0 {
		base["BenchmarkEngineScheduling"] = ns
	}
	// workers_N keys become the sub-benchmark names bench output uses.
	for k, ns := range rep.FleetDatasetParallel.NsPerOp {
		var n int
		if _, err := fmt.Sscanf(k, "workers_%d", &n); err == nil && ns > 0 {
			base[fmt.Sprintf("BenchmarkFleetDataset_Parallel/workers=%d", n)] = ns
		}
	}
	if len(base) == 0 {
		return nil, fmt.Errorf("benchdiff: no baselines found in %s", path)
	}
	return base, nil
}

// diff is one benchmark's comparison against its baseline.
type diff struct {
	Name              string
	BaselineNs, GotNs float64
	Ratio             float64 // got/baseline; 1.20 = 20% slower
}

// manifestStages reads a run manifest and returns stage → wall seconds.
func manifestStages(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m struct {
		Stages []struct {
			Name        string  `json:"name"`
			WallSeconds float64 `json:"wall_seconds"`
		} `json:"stages"`
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("benchdiff: parsing manifest %s: %v", path, err)
	}
	out := make(map[string]float64, len(m.Stages))
	for _, st := range m.Stages {
		out[st.Name] = st.WallSeconds
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchdiff: no stages in manifest %s", path)
	}
	return out, nil
}

// compareStages joins two manifests' stage timings. Stages present on
// only one side are skipped (a config change can add or drop sections),
// as are stages whose baseline is below minSeconds — sub-noise stages
// would otherwise dominate the regression count.
func compareStages(current, baseline map[string]float64, minSeconds float64) []diff {
	var ds []diff
	for name, got := range current {
		base, ok := baseline[name]
		if !ok || base < minSeconds {
			continue
		}
		ds = append(ds, diff{Name: name, BaselineNs: base, GotNs: got, Ratio: got / base})
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].Name < ds[j].Name })
	return ds
}

// diffManifests runs manifest mode and returns the number of regressed
// stages.
func diffManifests(basePath, curPath string, threshold, minSeconds float64) (int, error) {
	base, err := manifestStages(basePath)
	if err != nil {
		return 0, err
	}
	cur, err := manifestStages(curPath)
	if err != nil {
		return 0, err
	}
	ds := compareStages(cur, base, minSeconds)
	if len(ds) == 0 {
		return 0, fmt.Errorf("benchdiff: no stage of %s matches one in %s (above %.2fs)", curPath, basePath, minSeconds)
	}
	regressed := 0
	for _, d := range ds {
		status := "ok"
		if d.Ratio > 1+threshold {
			status = fmt.Sprintf("REGRESSION (> %+.0f%%)", 100*threshold)
			regressed++
		}
		fmt.Printf("stage %-46s baseline %9.2fs  now %9.2fs  %+7.1f%%  %s\n",
			d.Name, d.BaselineNs, d.GotNs, 100*(d.Ratio-1), status)
	}
	return regressed, nil
}

// missingBaselines returns the required baseline names (comma-separated
// in the -require flag) absent from the loaded baseline map. A gate that
// names a metric the baseline file lacks would otherwise pass vacuously:
// compare skips unmatched names, so a typo in the gate or a baseline file
// that was never regenerated silently stops guarding anything.
func missingBaselines(require string, baselines map[string]float64) []string {
	var missing []string
	for _, name := range strings.Split(require, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, ok := baselines[name]; !ok {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	return missing
}

// compare joins measured results with baselines; benchmarks present on
// only one side are ignored (CI may bench a subset).
func compare(measured, baselines map[string]float64) []diff {
	var ds []diff
	for name, got := range measured {
		base, ok := baselines[name]
		if !ok || base <= 0 {
			continue
		}
		ds = append(ds, diff{Name: name, BaselineNs: base, GotNs: got, Ratio: got / base})
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].Name < ds[j].Name })
	return ds
}

func main() {
	baseline := flag.String("baseline", "BENCH_PR1.json", "baseline bench report (PR bench schema or {\"baselines\": {...}})")
	threshold := flag.Float64("threshold", 0.20, "fail when ns/op regresses by more than this fraction")
	input := flag.String("input", "-", "bench output to compare (- = stdin)")
	manifestBase := flag.String("manifest-baseline", "", "baseline run manifest for stage-timing comparison")
	manifestCur := flag.String("manifest-current", "", "current run manifest for stage-timing comparison")
	stageThreshold := flag.Float64("stage-threshold", 0.20, "fail when a stage's wall time regresses by more than this fraction")
	stageMin := flag.Float64("stage-min-seconds", 0.05, "ignore stages whose baseline wall time is below this many seconds")
	require := flag.String("require", "", "comma-separated baseline metric names that must exist in -baseline; fail (listing the missing keys) instead of silently skipping them")
	flag.Parse()

	if (*manifestBase == "") != (*manifestCur == "") {
		fmt.Fprintln(os.Stderr, "benchdiff: -manifest-baseline and -manifest-current must be given together")
		os.Exit(2)
	}
	manifestMode := *manifestBase != ""
	stageRegressed := 0
	if manifestMode {
		var err error
		stageRegressed, err = diffManifests(*manifestBase, *manifestCur, *stageThreshold, *stageMin)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	// With only a manifest pair, don't consume (possibly empty) stdin.
	if manifestMode && *input == "-" {
		if stageRegressed > 0 {
			fmt.Fprintf(os.Stderr, "benchdiff: %d stage(s) regressed beyond %.0f%%\n", stageRegressed, 100**stageThreshold)
			os.Exit(1)
		}
		fmt.Printf("benchdiff: all stages within %.0f%% of baseline\n", 100**stageThreshold)
		return
	}

	in := io.Reader(os.Stdin)
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}
	measured, err := parseBenchOutput(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if len(measured) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmark results in input")
		os.Exit(2)
	}
	baselines, err := loadBaselines(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if missing := missingBaselines(*require, baselines); len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %s has no baseline for required metric(s): %s\n",
			*baseline, strings.Join(missing, ", "))
		os.Exit(2)
	}

	ds := compare(measured, baselines)
	if len(ds) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no measured benchmark matches a baseline")
		os.Exit(2)
	}
	regressed := 0
	for _, d := range ds {
		status := "ok"
		if d.Ratio > 1+*threshold {
			status = fmt.Sprintf("REGRESSION (> %+.0f%%)", 100**threshold)
			regressed++
		}
		unit := "ns/op"
		if i := strings.LastIndex(d.Name, ":"); i >= 0 {
			unit = d.Name[i+1:]
		}
		fmt.Printf("%-52s baseline %12.2f %s  now %12.2f %s  %+7.1f%%  %s\n",
			d.Name, d.BaselineNs, unit, d.GotNs, unit, 100*(d.Ratio-1), status)
	}
	if regressed > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d benchmark(s) regressed beyond %.0f%%\n", regressed, 100**threshold)
	}
	if stageRegressed > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d stage(s) regressed beyond %.0f%%\n", stageRegressed, 100**stageThreshold)
	}
	if regressed+stageRegressed > 0 {
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d benchmark(s) within %.0f%% of baseline\n", len(ds), 100**threshold)
}
