// Command dcsim runs the synthetic datacenter and exports its datasets:
// a port-mirror packet-header trace for one monitored host (the §3.3.2
// collection path) and/or a summary of the fleet-wide Fbflow view (the
// §3.3.1 path).
//
// Stdout carries only dataset output (rendered tables, -load summaries);
// diagnostics such as "wrote N headers" go to stderr through log/slog.
//
// Usage:
//
//	dcsim -mirror web -seconds 30 -out web.fbm     # write a binary trace
//	dcsim -fleet                                   # print the fleet view
//	dcsim -fleet -scale xlarge -matrix -windows 1  # million-host matrix window
//	dcsim -fleet -parallel 4                       # same view, 4 workers
//	dcsim -faults csw-down                         # degraded-mode fault run
//	dcsim -telemetry -paths-out paths.jsonl        # INT path records + occupancy
//	dcsim -serve -sketch -metrics-addr :9090       # endless rolling windows,
//	                                               # bounded memory, live gauges;
//	                                               # SIGHUP reloads -serve-config,
//	                                               # SIGINT/SIGTERM stop cleanly
package main

import (
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strconv"
	"strings"
	"time"

	"fbdcnet/internal/core"
	"fbdcnet/internal/fbflow"
	"fbdcnet/internal/mirror"
	"fbdcnet/internal/netsim"
	"fbdcnet/internal/obs"
	"fbdcnet/internal/obs/audit"
	"fbdcnet/internal/obs/export"
	"fbdcnet/internal/prof"
	"fbdcnet/internal/services"
	"fbdcnet/internal/telemetry"
	"fbdcnet/internal/topology"
	"fbdcnet/internal/workload"
)

var roleNames = map[string]topology.Role{
	"web":     topology.RoleWeb,
	"cache-f": topology.RoleCacheFollower,
	"cache-l": topology.RoleCacheLeader,
	"hadoop":  topology.RoleHadoop,
	"mf":      topology.RoleMultifeed,
	"slb":     topology.RoleSLB,
	"db":      topology.RoleDB,
	"misc":    topology.RoleMisc,
}

func main() {
	mirrorRole := flag.String("mirror", "", "write a mirror trace for this role (web|cache-f|cache-l|hadoop|mf|slb|db|misc)")
	seconds := flag.Int("seconds", 30, "trace duration in seconds")
	out := flag.String("out", "trace.fbm", "output trace file")
	pcapOut := flag.String("pcap", "", "also export the mirror trace as a pcap file")
	fleet := flag.Bool("fleet", false, "run the fleet-wide Fbflow view and print its summary")
	distributed := flag.Int("distributed", 0, "with -fleet: collect through this many local agent processes streaming binary partials to an in-process aggregator (0 = in-process collection)")
	agentFaults := flag.Bool("agent-faults", false, "with -distributed: kill one agent at its seed-planned crash point and restart it, recording the coverage gap")
	fleetAgent := flag.Bool("fleet-agent", false, "internal: run as one fleet shard agent (set by -distributed re-exec)")
	fleetAgentID := flag.Int("fleet-agent-id", 0, "internal: agent id")
	fleetAgentInc := flag.Int("fleet-agent-inc", 0, "internal: agent incarnation")
	fleetAgentConnect := flag.String("fleet-agent-connect", "", "internal: aggregator socket path")
	fleetAgentCount := flag.Int("fleet-agent-count", 0, "internal: total agent count")
	serve := flag.Bool("serve", false, "run the endless rolling-window collection loop (SIGHUP reloads -serve-config, SIGINT/SIGTERM stop cleanly)")
	serveWindows := flag.Int("serve-windows", 0, "with -serve: stop after this many windows (0 = run until signalled)")
	serveConfig := flag.String("serve-config", "", "with -serve: JSON file re-read on SIGHUP (window_sec, samples, matrix, taggers, mem_ceiling_mb, sketch)")
	sketchMode := flag.Bool("sketch", false, "replace exact heavy-hitter tables with bounded-memory sketches and add HLL distinct counts to fleet collection")
	scaleFlag := flag.String("scale", "tiny", "fleet scale: "+strings.Join(topology.ScaleNames(), "|"))
	matrix := flag.Bool("matrix", false, "with -fleet: synthesize traffic as rack-pair demand matrices instead of per-host flow sampling")
	windows := flag.Int("windows", 0, "override the number of fleet observation windows (0 = config default)")
	memCeilingMB := flag.Int64("mem-ceiling-mb", 0, "stamp this memory ceiling (MiB) into the run manifest; cmd/manifestcheck asserts the fleet heap peak stayed under it (0 = no ceiling)")
	saveDS := flag.String("save", "", "with -fleet: archive the Fbflow dataset to this file")
	loadDS := flag.String("load", "", "print the summary of a previously archived Fbflow dataset")
	seed := flag.Uint64("seed", 42, "deterministic seed")
	parallel := flag.Int("parallel", 0, "worker goroutines for dataset generation (0 = GOMAXPROCS); results are identical at any value")
	faults := flag.String("faults", "", fmt.Sprintf("run the degraded-mode fault experiment for a scenario (%s)",
		strings.Join(netsim.FaultScenarios(), "|")))
	telem := flag.Bool("telemetry", false, "run the in-fabric telemetry experiment and print its report")
	traceSample := flag.Float64("trace-sample", 0.1, "in-band telemetry flow sampling fraction (0 disables)")
	queueInterval := flag.Int("queue-interval", 200, "queue occupancy sampling interval, microseconds")
	pathsOut := flag.String("paths-out", "", "with -telemetry: write retained path records (JSONL, readable by traceview -paths) to this file")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	metricsAddr := flag.String("metrics-addr", "", "serve live metrics on this address (/metrics Prometheus text, /debug/vars expvar, / progress)")
	manifestPath := flag.String("manifest", "", "write the run manifest (config, stage timings, counters; distributed runs add the per-agent section) to this file")
	auditFlag := flag.Bool("audit", false, "record the determinism flight recorder: per-cell checkpoint digests into the manifest audit section plus a crash black box (compare manifests with cmd/digestdiff)")
	auditOut := flag.String("audit-out", "", "with -audit: write the black-box JSON dump to this file on panic, SIGQUIT, or a planned agent kill")
	auditPerturb := flag.String("audit-perturb", "", "with -audit: plant a ledger-only divergence at fleet-collect cell W:S (testing aid for digestdiff and CI; experiment outputs stay untouched)")
	traceOut := flag.String("trace-out", "", "write the run timeline (all agents plus the aggregator on one clock) as Chrome trace-event JSON to this file")
	quiet := flag.Bool("quiet", false, "suppress informational diagnostics on stderr (warnings and errors still print)")
	flag.Parse()

	level := slog.LevelInfo
	if *quiet {
		level = slog.LevelWarn
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(logger)

	stop, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		logger.Error("starting profiler", "err", err)
		os.Exit(2)
	}
	defer stop()

	cfg := core.QuickConfig()
	scale, ok := topology.ParseScale(*scaleFlag)
	if !ok {
		logger.Error("unknown scale", "scale", *scaleFlag,
			"have", strings.Join(topology.ScaleNames(), "|"))
		os.Exit(2)
	}
	cfg.Scale = scale
	cfg.FleetMatrix = *matrix
	cfg.MemCeilingBytes = *memCeilingMB << 20
	if *windows > 0 {
		cfg.FleetWindows = *windows
	}
	cfg.Seed = *seed
	cfg.Parallelism = *parallel
	cfg.Taggers = *parallel
	cfg.SketchMode = *sketchMode
	cfg.FaultScenario = *faults
	cfg.TraceSample = *traceSample
	cfg.QueueInterval = netsim.Time(*queueInterval) * netsim.Microsecond
	cfg.Obs = obs.NewRegistry()
	if *auditFlag {
		cfg.Audit = audit.New()
		bb := audit.NewBlackBox(0)
		cfg.Audit.SetBlackBox(bb)
		defer bb.HandlePanic(*auditOut)
		bb.InstallSignalDump(*auditOut)
		if *auditPerturb != "" {
			w, s, err := parsePerturb(*auditPerturb)
			if err != nil {
				logger.Error("bad -audit-perturb", "err", err)
				os.Exit(2)
			}
			cfg.Audit.Perturb(w, s)
			logger.Warn("planted ledger divergence", "window", w, "shard", s)
		}
	} else if *auditPerturb != "" {
		logger.Error("-audit-perturb requires -audit")
		os.Exit(2)
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		logger.Error("building system", "err", err)
		os.Exit(1)
	}

	if *fleetAgent {
		if *metricsAddr != "" {
			srv, err := obs.Serve(*metricsAddr, cfg.Obs)
			if err != nil {
				logger.Error("starting agent metrics endpoint", "err", err)
				os.Exit(1)
			}
			defer srv.Close()
			logger.Info("agent metrics endpoint listening", "agent", *fleetAgentID, "addr", srv.Addr())
		}
		runFleetAgent(sys, *fleetAgentID, *fleetAgentCount, *fleetAgentInc,
			*fleetAgentConnect, *agentFaults, *auditOut, logger)
		return
	}

	if *metricsAddr != "" {
		srv, err := obs.Serve(*metricsAddr, cfg.Obs)
		if err != nil {
			logger.Error("starting metrics endpoint", "err", err)
			os.Exit(1)
		}
		defer srv.Close()
		logger.Info("metrics endpoint listening", "addr", srv.Addr())
	}

	did := false
	if *serve {
		if err := runServe(sys, logger, *serveWindows, *serveConfig); err != nil {
			logger.Error("serve loop failed", "err", err)
			os.Exit(1)
		}
		did = true
	}
	if *faults != "" {
		ok := false
		for _, sc := range netsim.FaultScenarios() {
			if *faults == sc {
				ok = true
			}
		}
		if !ok {
			logger.Error("unknown fault scenario", "scenario", *faults,
				"have", strings.Join(netsim.FaultScenarios(), "|"))
			os.Exit(2)
		}
		fmt.Print(sys.Degraded().Render())
		did = true
	}
	if *telem {
		res := sys.Telemetry()
		if res == nil {
			logger.Error("-telemetry needs a positive -trace-sample")
			os.Exit(2)
		}
		fmt.Print(res.Render())
		if *pathsOut != "" {
			f, err := os.Create(*pathsOut)
			if err != nil {
				logger.Error("creating path record file", "err", err)
				os.Exit(1)
			}
			if err := telemetry.WriteRecords(f, res.Records, res.Switches); err != nil {
				logger.Error("writing path records", "err", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				logger.Error("closing path record file", "err", err)
				os.Exit(1)
			}
			logger.Info("wrote telemetry path records", "records", len(res.Records), "path", *pathsOut)
		}
		did = true
	}
	if *mirrorRole != "" {
		role, ok := roleNames[*mirrorRole]
		if !ok {
			logger.Error("unknown role", "role", *mirrorRole)
			os.Exit(2)
		}
		f, err := os.Create(*out)
		if err != nil {
			logger.Error("creating trace file", "err", err)
			os.Exit(1)
		}
		w, err := mirror.NewWriter(f)
		if err != nil {
			logger.Error("opening trace writer", "err", err)
			os.Exit(1)
		}
		sink := workload.Fanout{w}
		var pw *mirror.PcapWriter
		var pf *os.File
		if *pcapOut != "" {
			pf, err = os.Create(*pcapOut)
			if err != nil {
				logger.Error("creating pcap file", "err", err)
				os.Exit(1)
			}
			pw, err = mirror.NewPcapWriter(pf)
			if err != nil {
				logger.Error("opening pcap writer", "err", err)
				os.Exit(1)
			}
			sink = append(sink, pw)
		}
		host := sys.Monitored(role)
		sp := cfg.Obs.StartSpan(fmt.Sprintf("mirror:%s:%ds", *mirrorRole, *seconds))
		tr := services.NewTrace(sys.Pick, host, *seed, cfg.Params, sink)
		tr.Run(netsim.Time(*seconds) * netsim.Second)
		sp.End()
		if err := w.Close(); err != nil {
			logger.Error("writing trace", "err", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			logger.Error("closing trace file", "err", err)
			os.Exit(1)
		}
		if pw != nil {
			if err := pw.Close(); err != nil {
				logger.Error("writing pcap", "err", err)
				os.Exit(1)
			}
			if err := pf.Close(); err != nil {
				logger.Error("closing pcap file", "err", err)
				os.Exit(1)
			}
			logger.Info("wrote pcap export", "path", *pcapOut)
		}
		logger.Info("wrote mirror trace", "headers", w.Count(), "role", role.String(),
			"host", int(host), "path", *out)
		did = true
	}
	if *fleet {
		if *distributed > 0 {
			// Derive and validate every agent endpoint up front: a
			// collision or port overflow fails the launch instead of one
			// agent dying later with "address already in use". Agents run
			// -quiet, so the resolved table is announced here.
			addrs, err := core.AgentMetricsAddrs(*metricsAddr, *distributed, *metricsAddr)
			if err != nil {
				logger.Error("deriving agent metrics endpoints", "err", err)
				os.Exit(2)
			}
			for a, addr := range addrs {
				if addr != "" {
					logger.Info("agent metrics endpoint", "agent", a, "addr", addr)
				}
			}
			gaps, err := sys.CollectFleetDistributed(*distributed,
				fleetAgentArgs(cfg, *distributed, *agentFaults, *metricsAddr))
			if err != nil {
				logger.Error("distributed fleet collection failed", "err", err)
				os.Exit(1)
			}
			if len(gaps) > 0 {
				cells := 0
				for _, g := range gaps {
					cells += g.Cells
				}
				logger.Warn("distributed collection has coverage gaps", "gaps", len(gaps), "cells", cells)
			}
		}
		fmt.Print(sys.Table3().Render())
		fmt.Println()
		fmt.Print(sys.Section41().Render())
		if *saveDS != "" {
			f, err := os.Create(*saveDS)
			if err != nil {
				logger.Error("creating dataset archive", "err", err)
				os.Exit(1)
			}
			if err := sys.FleetDataset().Save(f); err != nil {
				logger.Error("archiving dataset", "err", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				logger.Error("closing dataset archive", "err", err)
				os.Exit(1)
			}
			logger.Info("archived Fbflow dataset", "path", *saveDS)
		}
		did = true
	}
	if *loadDS != "" {
		f, err := os.Open(*loadDS)
		if err != nil {
			logger.Error("opening dataset archive", "err", err)
			os.Exit(1)
		}
		ds, err := fbflow.Load(f)
		f.Close()
		if err != nil {
			logger.Error("loading dataset", "err", err)
			os.Exit(1)
		}
		fmt.Printf("archived dataset: %s total bytes, %d minutes\n",
			renderSI(ds.TotalBytes()), len(ds.PerMinute()))
		for _, l := range topology.Localities {
			fmt.Printf("  %-17s %5.1f%%\n", l, 100*ds.LocalityShareAll()[l])
		}
		did = true
	}
	if !did {
		flag.Usage()
		os.Exit(2)
	}

	if *manifestPath != "" {
		m := cfg.Obs.Manifest(cfg.ManifestMeta("dcsim"))
		m.Agents = sys.AgentManifestRecords()
		m.Audit = cfg.Audit.Section()
		if err := m.Validate(); err != nil {
			logger.Warn("manifest fails schema validation", "err", err)
		}
		if err := m.WriteFile(*manifestPath); err != nil {
			logger.Error("writing run manifest", "err", err)
			os.Exit(1)
		}
		logger.Info("wrote run manifest", "path", *manifestPath)
	}
	if *traceOut != "" {
		procs := export.FromRun(cfg.Obs, sys.AgentReports())
		if err := export.WriteFile(*traceOut, procs); err != nil {
			logger.Error("writing run trace", "err", err)
			os.Exit(1)
		}
		logger.Info("wrote run timeline", "path", *traceOut, "procs", len(procs))
	}
}

// runFleetAgent is the hidden -fleet-agent branch of the -distributed
// re-exec: dial the aggregator, stream this shard range, and exit with
// core.AgentCrashExitCode when the seed-planned crash point is reached
// so the parent restarts the next incarnation.
func runFleetAgent(sys *core.System, id, agents, incarnation int, connect string, faults bool, auditOut string, logger *slog.Logger) {
	crashAfter := int64(-1)
	if faults {
		if plan := sys.PlanAgentCrash(agents); plan.Agent == id && incarnation == 0 {
			crashAfter = plan.AfterTask
		}
	}
	conn, err := core.DialFleetAgent("unix", connect, 10*time.Second)
	if err != nil {
		logger.Error("fleet agent dialing aggregator", "agent", id, "err", err)
		os.Exit(1)
	}
	err = sys.RunFleetAgent(id, agents, uint32(incarnation), conn, crashAfter)
	conn.Close()
	if errors.Is(err, core.ErrPlannedCrash) {
		// The planned kill is the black box's flight-recorder moment:
		// dump the ring before the process dies so the gap is debuggable.
		sys.Cfg.Audit.BB().Dump(auditOut, "planned-crash")
		os.Exit(core.AgentCrashExitCode)
	}
	if err != nil {
		logger.Error("fleet agent failed", "agent", id, "err", err)
		os.Exit(1)
	}
}

// fleetAgentArgs builds the re-exec argument list reproducing this
// process's fleet configuration for one agent incarnation.
func fleetAgentArgs(cfg core.Config, agents int, faults bool, metricsAddr string) func(addr string, id, inc int) []string {
	return func(addr string, id, inc int) []string {
		args := []string{
			"-fleet-agent",
			"-fleet-agent-id", strconv.Itoa(id),
			"-fleet-agent-inc", strconv.Itoa(inc),
			"-fleet-agent-connect", addr,
			"-fleet-agent-count", strconv.Itoa(agents),
			"-scale", cfg.Scale.String(),
			"-seed", strconv.FormatUint(cfg.Seed, 10),
			"-windows", strconv.Itoa(cfg.FleetWindows),
			"-quiet",
		}
		if cfg.FleetMatrix {
			args = append(args, "-matrix")
		}
		if cfg.SketchMode {
			args = append(args, "-sketch")
		}
		if faults {
			args = append(args, "-agent-faults")
		}
		if cfg.Audit.Enabled() {
			// -audit propagates so agents ledger and forward their cells;
			// -audit-perturb deliberately does NOT — the planted divergence
			// belongs only to the aggregator's authoritative ledger.
			args = append(args, "-audit")
		}
		if maddr := core.AgentMetricsAddr(metricsAddr, id); maddr != "" {
			args = append(args, "-metrics-addr", maddr)
		}
		return args
	}
}

// parsePerturb parses an -audit-perturb "W:S" cell spec.
func parsePerturb(spec string) (window, shard int, err error) {
	w, s, ok := strings.Cut(spec, ":")
	if !ok {
		return 0, 0, fmt.Errorf("perturb spec %q is not WINDOW:SHARD", spec)
	}
	window, err = strconv.Atoi(w)
	if err != nil || window < 0 {
		return 0, 0, fmt.Errorf("perturb spec %q: bad window %q", spec, w)
	}
	shard, err = strconv.Atoi(s)
	if err != nil || shard < 0 {
		return 0, 0, fmt.Errorf("perturb spec %q: bad shard %q", spec, s)
	}
	return window, shard, nil
}

// renderSI formats bytes with an SI suffix.
func renderSI(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.1fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	}
	return fmt.Sprintf("%.0f", v)
}
