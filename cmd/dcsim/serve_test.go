package main

import (
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"fbdcnet/internal/core"
)

// TestLoadServeConfig pins the overlay semantics: absent keys keep the
// launch-time values, present keys replace them, and malformed files are
// rejected without clobbering the base.
func TestLoadServeConfig(t *testing.T) {
	base := core.QuickConfig()
	base.FleetSamples = 8

	path := filepath.Join(t.TempDir(), "serve.json")
	if err := os.WriteFile(path, []byte(`{"samples": 4, "sketch": true, "mem_ceiling_mb": 256}`), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := loadServeConfig(path, base)
	if err != nil {
		t.Fatal(err)
	}
	if got.FleetSamples != 4 || !got.SketchMode || got.MemCeilingBytes != 256<<20 {
		t.Errorf("overlay not applied: %+v", got)
	}
	if got.FleetWindowSec != base.FleetWindowSec {
		t.Errorf("absent key changed FleetWindowSec: %v -> %v", base.FleetWindowSec, got.FleetWindowSec)
	}

	if err := os.WriteFile(path, []byte(`{nope`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadServeConfig(path, base); err == nil {
		t.Error("malformed config accepted")
	}
	if _, err := loadServeConfig(filepath.Join(t.TempDir(), "absent.json"), base); err == nil {
		t.Error("missing config accepted")
	}
}

// TestRunServeSIGHUPReload drives the real signal path: a bounded serve
// loop receives SIGHUP pointing at a config that enables sketch mode,
// and the reload lands at a later window boundary.
func TestRunServeSIGHUPReload(t *testing.T) {
	cfg := core.QuickConfig()
	cfg.Taggers = 2
	sys := core.MustNewSystem(cfg)

	path := filepath.Join(t.TempDir(), "serve.json")
	if err := os.WriteFile(path, []byte(`{"sketch": true}`), 0o644); err != nil {
		t.Fatal(err)
	}
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))

	// runServe owns the loop, so the HUP is raised from outside: enough
	// windows that the loop is still rolling when the signal lands (tiny
	// windows take single-digit milliseconds each).
	done := make(chan error, 1)
	go func() { done <- runServe(sys, logger, 200, path) }()
	// Give the loop a moment to install its handler, then reload.
	time.Sleep(50 * time.Millisecond)
	if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("serve loop did not finish")
	}
	if !sys.Cfg.SketchMode {
		t.Error("SIGHUP reload did not enable sketch mode")
	}
}
