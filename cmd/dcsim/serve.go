package main

import (
	"context"
	"encoding/json"
	"log/slog"
	"os"
	"os/signal"
	"syscall"

	"fbdcnet/internal/core"
)

// serveFileConfig is the optional SIGHUP-reloadable config file of serve
// mode: every field is a pointer so absent keys leave the corresponding
// launch-time setting untouched. Topology-shaping settings (scale, seed)
// are deliberately not reloadable — they would require rebuilding the
// System — which mirrors core.ServeOptions.Reload's contract.
type serveFileConfig struct {
	WindowSec    *float64 `json:"window_sec"`
	Samples      *int     `json:"samples"`
	Matrix       *bool    `json:"matrix"`
	Taggers      *int     `json:"taggers"`
	MemCeilingMB *int64   `json:"mem_ceiling_mb"`
	Sketch       *bool    `json:"sketch"`
}

// loadServeConfig reads path and overlays it onto base.
func loadServeConfig(path string, base core.Config) (core.Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return base, err
	}
	var fc serveFileConfig
	if err := json.Unmarshal(data, &fc); err != nil {
		return base, err
	}
	if fc.WindowSec != nil {
		base.FleetWindowSec = *fc.WindowSec
	}
	if fc.Samples != nil {
		base.FleetSamples = *fc.Samples
	}
	if fc.Matrix != nil {
		base.FleetMatrix = *fc.Matrix
	}
	if fc.Taggers != nil {
		base.Taggers = *fc.Taggers
	}
	if fc.MemCeilingMB != nil {
		base.MemCeilingBytes = *fc.MemCeilingMB << 20
	}
	if fc.Sketch != nil {
		base.SketchMode = *fc.Sketch
	}
	return base, nil
}

// runServe drives the endless rolling-window loop: SIGINT/SIGTERM stop
// it cleanly at the next window boundary, SIGHUP re-reads cfgPath (when
// given) and applies the reloadable fields at the next boundary.
func runServe(sys *core.System, logger *slog.Logger, windows int, cfgPath string) error {
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	// base is a snapshot taken before the loop starts: the HUP goroutine
	// must not read sys.Cfg while the serve loop applies reloads to it.
	base := sys.Cfg
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	reload := make(chan core.Config, 1)
	go func() {
		for range hup {
			if cfgPath == "" {
				logger.Warn("SIGHUP received but no -serve-config file was given")
				continue
			}
			next, err := loadServeConfig(cfgPath, base)
			if err != nil {
				logger.Warn("reloading serve config", "path", cfgPath, "err", err)
				continue
			}
			// Replace any pending reconfig: the latest file contents win.
			select {
			case <-reload:
			default:
			}
			reload <- next
			logger.Info("serve config reloaded; applies at next window", "path", cfgPath)
		}
	}()

	return sys.Serve(ctx, core.ServeOptions{
		Windows: windows,
		Reload:  reload,
		OnWindow: func(st core.ServeWindowStats) error {
			attrs := []any{
				"window", st.Window,
				"bytes", renderSI(st.TotalBytes),
				"rate_p50_mbps", st.HostRateP50,
				"rate_p99_mbps", st.HostRateP99,
				"heap", renderSI(float64(st.HeapBytes)),
				"wall_sec", st.WallSec,
			}
			if st.DistinctFlows > 0 {
				attrs = append(attrs,
					"distinct_flows", int64(st.DistinctFlows),
					"distinct_hosts", int64(st.DistinctHosts),
					"distinct_racks", int64(st.DistinctRacks))
			}
			logger.Info("serve window complete", attrs...)
			return nil
		},
	})
}
