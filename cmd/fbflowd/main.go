// Command fbflowd is the distributed form of the fleet collection
// pipeline: one aggregator process merging length-prefixed binary
// partial frames from N shard agents — the reproduction of Fbflow's
// agents → Scribe → aggregation tier shape (§3.3.1), scaled down to
// processes and sockets.
//
// The aggregator prints the fleet digest (canonical JSON) on stdout.
// For a fixed seed and shard map the digest is byte-identical to the
// single-process run (-single) at any agent count; a run that lost an
// agent mid-window carries an extra "coverage" block accounting the
// gapped cells and is otherwise identical to a run that never had them.
//
// Usage:
//
//	fbflowd -agents 4 -spawn                        # local 4-agent run, unix socket
//	fbflowd -single                                 # single-process reference digest
//	fbflowd -agents 4 -spawn -agent-faults          # seed-planned agent crash + restart
//	fbflowd -listen tcp:127.0.0.1:7461 -agents 2    # wait for external agents
//	fbflowd -agent -id 0 -agents 2 -connect tcp:host:7461   # one external agent
package main

import (
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"fbdcnet/internal/core"
	"fbdcnet/internal/obs"
	"fbdcnet/internal/obs/audit"
	"fbdcnet/internal/obs/export"
	"fbdcnet/internal/topology"
)

func main() {
	listen := flag.String("listen", "", "aggregator address (unix:/path, tcp:host:port, or bare socket path); empty with -spawn uses a private unix socket")
	agents := flag.Int("agents", 4, "number of shard agents")
	spawnLocal := flag.Bool("spawn", false, "spawn the agents locally as child processes of this aggregator")
	single := flag.Bool("single", false, "run the collection single-process and print the same digest (the byte-identity reference)")
	agentMode := flag.Bool("agent", false, "run as one shard agent instead of the aggregator")
	agentID := flag.Int("id", 0, "with -agent: this agent's id in [0, agents)")
	incarnation := flag.Int("incarnation", 0, "with -agent: restart count of this agent (0 = first run)")
	connect := flag.String("connect", "", "with -agent: aggregator address to dial")
	agentFaults := flag.Bool("agent-faults", false, "enable the seed-planned agent crash: the victim exits mid-window and is restarted with the next incarnation")
	reconnectWait := flag.Int("reconnect-wait-sec", 10, "seconds the aggregator waits for a dead agent to reconnect before gapping its remaining cells")

	scaleFlag := flag.String("scale", "tiny", "fleet scale: "+strings.Join(topology.ScaleNames(), "|"))
	seed := flag.Uint64("seed", 42, "deterministic seed")
	windows := flag.Int("windows", 0, "override the number of fleet observation windows (0 = config default)")
	matrix := flag.Bool("matrix", false, "synthesize fleet traffic as rack-pair demand matrices instead of per-host flow sampling")
	sketch := flag.Bool("sketch", false, "carry HLL distinct counts through collection (sketch mode)")
	parallel := flag.Int("parallel", 0, "with -single: worker goroutines (0 = GOMAXPROCS)")
	metricsAddr := flag.String("metrics-addr", "", "serve live metrics on this address (/metrics Prometheus text, /debug/vars expvar, / progress); with -spawn, agents serve on the same host at port+1+id")
	manifestPath := flag.String("manifest", "", "write the run manifest JSON here (aggregator runs include the federated per-agent section)")
	auditFlag := flag.Bool("audit", false, "record the determinism flight recorder: per-cell checkpoint digests into the manifest audit section plus a crash black box (compare manifests with cmd/digestdiff)")
	auditOut := flag.String("audit-out", "", "with -audit: write the black-box JSON dump to this file on panic, SIGQUIT, or a planned agent kill")
	auditPerturb := flag.String("audit-perturb", "", "with -audit: plant a ledger-only divergence at fleet-collect cell W:S (testing aid for digestdiff and CI; experiment outputs stay untouched)")
	traceOut := flag.String("trace-out", "", "write the unified run timeline here as Chrome trace-event JSON (open in Perfetto)")
	quiet := flag.Bool("quiet", false, "suppress informational diagnostics on stderr")
	flag.Parse()

	level := slog.LevelInfo
	if *quiet {
		level = slog.LevelWarn
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(logger)

	cfg := core.QuickConfig()
	scale, ok := topology.ParseScale(*scaleFlag)
	if !ok {
		logger.Error("unknown scale", "scale", *scaleFlag, "have", strings.Join(topology.ScaleNames(), "|"))
		os.Exit(2)
	}
	cfg.Scale = scale
	cfg.Seed = *seed
	if *windows > 0 {
		cfg.FleetWindows = *windows
	}
	cfg.FleetMatrix = *matrix
	cfg.SketchMode = *sketch
	cfg.Parallelism = *parallel
	cfg.Taggers = *parallel
	cfg.Obs = obs.NewRegistry()
	if *auditFlag {
		cfg.Audit = audit.New()
		bb := audit.NewBlackBox(0)
		cfg.Audit.SetBlackBox(bb)
		defer bb.HandlePanic(*auditOut)
		bb.InstallSignalDump(*auditOut)
		if *auditPerturb != "" {
			w, s, err := parsePerturb(*auditPerturb)
			if err != nil {
				logger.Error("bad -audit-perturb", "err", err)
				os.Exit(2)
			}
			cfg.Audit.Perturb(w, s)
			logger.Warn("planted ledger divergence", "window", w, "shard", s)
		}
	} else if *auditPerturb != "" {
		logger.Error("-audit-perturb requires -audit")
		os.Exit(2)
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		logger.Error("building system", "err", err)
		os.Exit(1)
	}

	if *metricsAddr != "" {
		srv, err := obs.Serve(*metricsAddr, cfg.Obs)
		if err != nil {
			logger.Error("starting metrics endpoint", "err", err)
			os.Exit(1)
		}
		defer srv.Close()
		logger.Info("metrics endpoint listening", "addr", srv.Addr())
	}

	switch {
	case *agentMode:
		runAgent(sys, *agentID, *agents, *incarnation, *connect, *agentFaults, *auditOut, logger)
	case *single:
		printDigest(sys, logger)
	default:
		runAggregator(sys, *listen, *agents, *spawnLocal, *agentFaults,
			time.Duration(*reconnectWait)*time.Second, *scaleFlag, *metricsAddr, logger)
	}
	writeObsArtifacts(sys, *manifestPath, *traceOut, logger)
}

// writeObsArtifacts writes the run manifest and the Chrome trace-event
// timeline when the corresponding flags were given. Aggregator runs get
// the federated per-agent section and every agent's spans; other modes
// write their process-local view.
func writeObsArtifacts(sys *core.System, manifestPath, traceOut string, logger *slog.Logger) {
	if manifestPath != "" {
		m := sys.Cfg.Obs.Manifest(sys.Cfg.ManifestMeta("fbflowd"))
		m.Agents = sys.AgentManifestRecords()
		m.Audit = sys.Cfg.Audit.Section()
		if err := m.Validate(); err != nil {
			logger.Error("manifest failed schema validation", "err", err)
			os.Exit(1)
		}
		if err := m.WriteFile(manifestPath); err != nil {
			logger.Error("writing manifest", "path", manifestPath, "err", err)
			os.Exit(1)
		}
		logger.Info("manifest written", "path", manifestPath, "agents", len(m.Agents))
	}
	if traceOut != "" {
		procs := export.FromRun(sys.Cfg.Obs, sys.AgentReports())
		if err := export.WriteFile(traceOut, procs); err != nil {
			logger.Error("writing trace", "path", traceOut, "err", err)
			os.Exit(1)
		}
		logger.Info("trace written", "path", traceOut, "procs", len(procs))
	}
}

// runAgent dials the aggregator and streams this agent's shard range.
func runAgent(sys *core.System, id, agents, incarnation int, connect string, faults bool, auditOut string, logger *slog.Logger) {
	if connect == "" {
		logger.Error("-agent needs -connect")
		os.Exit(2)
	}
	crashAfter := int64(-1)
	if faults {
		if plan := sys.PlanAgentCrash(agents); plan.Agent == id && incarnation == 0 {
			crashAfter = plan.AfterTask
		}
	}
	network, addr := core.ParseListenSpec(connect)
	conn, err := core.DialFleetAgent(network, addr, 10*time.Second)
	if err != nil {
		logger.Error("dialing aggregator", "err", err)
		os.Exit(1)
	}
	err = sys.RunFleetAgent(id, agents, uint32(incarnation), conn, crashAfter)
	conn.Close()
	if errors.Is(err, core.ErrPlannedCrash) {
		logger.Info("agent reached planned crash point", "agent", id, "task", crashAfter)
		// The planned kill is the black box's flight-recorder moment:
		// dump the ring before the process dies so the gap is debuggable.
		sys.Cfg.Audit.BB().Dump(auditOut, "planned-crash")
		os.Exit(core.AgentCrashExitCode)
	}
	if err != nil {
		logger.Error("agent failed", "agent", id, "err", err)
		os.Exit(1)
	}
}

// runAggregator serves the merge frontier, optionally spawning the
// agents locally, and prints the digest.
func runAggregator(sys *core.System, listen string, agents int, spawnLocal, faults bool, reconnectWait time.Duration, scaleName, metricsAddr string, logger *slog.Logger) {
	agentArgsTo := func(connectSpec string, a, inc int) []string {
		args := []string{
			"-agent", "-id", strconv.Itoa(a), "-agents", strconv.Itoa(agents),
			"-incarnation", strconv.Itoa(inc), "-connect", connectSpec,
			"-scale", scaleName,
			"-seed", strconv.FormatUint(sys.Cfg.Seed, 10),
			"-windows", strconv.Itoa(sys.Cfg.FleetWindows),
			"-quiet",
		}
		if sys.Cfg.FleetMatrix {
			args = append(args, "-matrix")
		}
		if sys.Cfg.SketchMode {
			args = append(args, "-sketch")
		}
		if faults {
			args = append(args, "-agent-faults")
		}
		if sys.Cfg.Audit.Enabled() {
			// -audit propagates so agents ledger and forward their cells;
			// -audit-perturb deliberately does NOT — the planted divergence
			// belongs only to the aggregator's authoritative ledger.
			args = append(args, "-audit")
		}
		if addr := core.AgentMetricsAddr(metricsAddr, a); addr != "" {
			args = append(args, "-metrics-addr", addr)
		}
		return args
	}
	if spawnLocal {
		// Derive and validate the full per-agent endpoint table up front:
		// a collision with the aggregator's own endpoint or a port
		// overflow fails the launch here instead of one agent dying later
		// with an opaque bind error. Spawned agents run -quiet, so this is
		// also where their endpoints are announced (a port-0 base makes
		// each agent pick its own free port).
		addrs, err := core.AgentMetricsAddrs(metricsAddr, agents, metricsAddr)
		if err != nil {
			logger.Error("deriving agent metrics endpoints", "err", err)
			os.Exit(2)
		}
		for a, addr := range addrs {
			if addr != "" {
				logger.Info("agent metrics endpoint", "agent", a, "addr", addr)
			}
		}
	}
	agentArgs := func(addr string, a, inc int) []string {
		return agentArgsTo("unix:"+addr, a, inc)
	}

	var gaps []core.CoverageGap
	switch {
	case spawnLocal && listen == "":
		// The common local case: private unix socket, agents spawned and
		// restarted by the aggregator.
		var err error
		gaps, err = sys.CollectFleetDistributed(agents, agentArgs)
		if err != nil {
			logger.Error("distributed collection failed", "err", err)
			os.Exit(1)
		}
	case spawnLocal:
		// Explicit address but still self-spawned agents — useful for
		// exercising the tcp path locally.
		network, addr := core.ParseListenSpec(listen)
		spawn, err := core.SelfExecSpawner(func(a, inc int) []string { return agentArgsTo(network+":"+addr, a, inc) })
		if err != nil {
			logger.Error("resolving spawner", "err", err)
			os.Exit(1)
		}
		ds, g, err := sys.RunDistributedFleet(network, addr, agents, spawn, reconnectWait)
		if err != nil {
			logger.Error("distributed collection failed", "err", err)
			os.Exit(1)
		}
		gaps = g
		if !sys.InjectFleetDataset(ds, g) {
			logger.Error("fleet dataset already collected")
			os.Exit(1)
		}
	default:
		// External agents: listen and wait for them to dial in.
		network, addr := core.ParseListenSpec(listen)
		if listen == "" {
			network, addr = "unix", filepath.Join(os.TempDir(), fmt.Sprintf("fbflowd-%d.sock", os.Getpid()))
			defer os.Remove(addr)
		}
		ln, err := net.Listen(network, addr)
		if err != nil {
			logger.Error("listening", "addr", listen, "err", err)
			os.Exit(1)
		}
		logger.Info("aggregator listening", "network", network, "addr", addr, "agents", agents)
		ds, g, err := sys.ServeFleetAggregator(ln, agents, reconnectWait)
		ln.Close()
		if err != nil {
			logger.Error("aggregation failed", "err", err)
			os.Exit(1)
		}
		gaps = g
		if !sys.InjectFleetDataset(ds, g) {
			logger.Error("fleet dataset already collected")
			os.Exit(1)
		}
	}
	if len(gaps) > 0 {
		cells := 0
		for _, g := range gaps {
			cells += g.Cells
		}
		logger.Warn("coverage gaps recorded", "gaps", len(gaps), "cells", cells)
	}
	printDigest(sys, logger)
}

// parsePerturb parses an -audit-perturb "W:S" cell spec.
func parsePerturb(spec string) (window, shard int, err error) {
	w, s, ok := strings.Cut(spec, ":")
	if !ok {
		return 0, 0, fmt.Errorf("perturb spec %q is not WINDOW:SHARD", spec)
	}
	window, err = strconv.Atoi(w)
	if err != nil || window < 0 {
		return 0, 0, fmt.Errorf("perturb spec %q: bad window %q", spec, w)
	}
	shard, err = strconv.Atoi(s)
	if err != nil || shard < 0 {
		return 0, 0, fmt.Errorf("perturb spec %q: bad shard %q", spec, s)
	}
	return window, shard, nil
}

// printDigest renders the canonical digest JSON on stdout.
func printDigest(sys *core.System, logger *slog.Logger) {
	b, err := sys.FleetDigest().JSON()
	if err != nil {
		logger.Error("rendering digest", "err", err)
		os.Exit(1)
	}
	os.Stdout.Write(b)
}
