// Command traceview inspects a packet-header trace: either the native
// binary mirror format produced by dcsim, or a header-only pcap (detected
// by magic). It prints packet and byte totals, the packet size
// distribution, top flows by bytes, and SYN counts — a minimal
// tcpdump-style triage tool.
//
// With -paths the argument is instead a telemetry path-record file (the
// JSONL written by `experiments -paths-out` / `dcsim -telemetry
// -paths-out`), and traceview prints each sampled packet's hop-by-hop
// walk through the fabric with queue depths and delays.
//
// Usage:
//
//	traceview trace.fbm
//	traceview capture.pcap
//	traceview -paths paths.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"fbdcnet/internal/mirror"
	"fbdcnet/internal/packet"
	"fbdcnet/internal/render"
	"fbdcnet/internal/stats"
	"fbdcnet/internal/telemetry"
)

func main() {
	paths := flag.Bool("paths", false, "treat the argument as a telemetry path-record file (JSONL)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: traceview [-paths] <trace.fbm|paths.jsonl>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()

	if *paths {
		recs, err := telemetry.ReadRecords(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reading path records:", err)
			os.Exit(1)
		}
		fmt.Print(renderPaths(recs))
		return
	}

	forEach, err := openTrace(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	sizes := stats.NewSample(0)
	flows := stats.NewCounter()
	var pkts, bytes, syns int64
	var first, last int64
	err = forEach(func(h packet.Header) {
		if pkts == 0 {
			first = h.Time
		}
		last = h.Time
		pkts++
		bytes += int64(h.Size)
		sizes.Add(float64(h.Size))
		flows.Add(h.Key.String(), float64(h.Size))
		if h.SYN() && h.Flags&packet.FlagACK == 0 {
			syns++
		}
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "reading trace:", err)
		os.Exit(1)
	}
	durSec := float64(last-first) / 1e9
	fmt.Printf("packets: %d  bytes: %s  flows: %d  SYNs: %d  span: %.2fs\n",
		pkts, render.SI(float64(bytes)), flows.Len(), syns, durSec)
	fmt.Printf("packet sizes: %s\n\n", render.Quantiles(sizes))
	fmt.Print(render.CDF("packet size CDF (bytes)", sizes, 60, 8, false))

	fmt.Println("\ntop flows by bytes:")
	top := flows.Sorted()
	if len(top) > 10 {
		top = top[:10]
	}
	sort.Slice(top, func(i, j int) bool { return top[i].Val > top[j].Val })
	for _, kv := range top {
		fmt.Printf("  %-48s %s\n", kv.Key, render.SI(kv.Val))
	}
}

// pathsShown caps how many records print hop by hop; the header totals
// always cover the whole file.
const pathsShown = 20

// renderPaths prints the path-record report: status totals, then each
// record's hop-by-hop walk (switch, tier, egress port, disposal reason,
// queue depth at enqueue, queuing delay, hop timestamp).
func renderPaths(recs []telemetry.FileRecord) string {
	var b strings.Builder
	var hops int
	status := map[string]int{}
	for _, r := range recs {
		hops += len(r.Hops)
		status[r.Status]++
	}
	fmt.Fprintf(&b, "telemetry path records: %d, hops: %d\n", len(recs), hops)
	keys := make([]string, 0, len(status))
	for k := range status {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b.WriteString("status:")
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%d", k, status[k])
	}
	b.WriteByte('\n')
	for i := range recs {
		if i == pathsShown {
			fmt.Fprintf(&b, "... %d more records\n", len(recs)-pathsShown)
			break
		}
		r := &recs[i]
		mark := ""
		if r.Rerouted {
			mark = " rerouted"
		}
		fmt.Fprintf(&b, "%s:%d > %s:%d %dB try %d post %d%s %s in %.1fµs\n",
			r.Src, r.SrcPort, r.Dst, r.DstPort, r.Size, r.Tries, r.Post, mark,
			r.Status, float64(r.Done-r.Injected)/1e3)
		for _, h := range r.Hops {
			fmt.Fprintf(&b, "  %-10s %-4s port %-3d %-12s qdepth %-8s qdelay %8.1fµs @%10.1fµs\n",
				h.Switch, h.Tier, h.Port, h.Reason, render.SI(float64(h.QDepth)),
				float64(h.QDelayNs)/1e3, float64(h.AtNs)/1e3)
		}
	}
	return b.String()
}

// openTrace sniffs the file's magic and returns an iterator over either
// the native mirror format or pcap.
func openTrace(f *os.File) (func(func(packet.Header)) error, error) {
	var magic [4]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return nil, fmt.Errorf("reading magic: %w", err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	if magic[0] == 'F' && magic[1] == 'B' && magic[2] == 'M' {
		r, err := mirror.NewReader(f)
		if err != nil {
			return nil, err
		}
		return r.ForEach, nil
	}
	r, err := mirror.NewPcapReader(f)
	if err != nil {
		return nil, err
	}
	return r.ForEach, nil
}
