// Command traceview inspects a packet-header trace: either the native
// binary mirror format produced by dcsim, or a header-only pcap (detected
// by magic). It prints packet and byte totals, the packet size
// distribution, top flows by bytes, and SYN counts — a minimal
// tcpdump-style triage tool.
//
// Usage:
//
//	traceview trace.fbm
//	traceview capture.pcap
package main

import (
	"fmt"
	"io"
	"os"
	"sort"

	"fbdcnet/internal/mirror"
	"fbdcnet/internal/packet"
	"fbdcnet/internal/render"
	"fbdcnet/internal/stats"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: traceview <trace.fbm>")
		os.Exit(2)
	}
	f, err := os.Open(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	forEach, err := openTrace(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	sizes := stats.NewSample(0)
	flows := stats.NewCounter()
	var pkts, bytes, syns int64
	var first, last int64
	err = forEach(func(h packet.Header) {
		if pkts == 0 {
			first = h.Time
		}
		last = h.Time
		pkts++
		bytes += int64(h.Size)
		sizes.Add(float64(h.Size))
		flows.Add(h.Key.String(), float64(h.Size))
		if h.SYN() && h.Flags&packet.FlagACK == 0 {
			syns++
		}
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "reading trace:", err)
		os.Exit(1)
	}
	durSec := float64(last-first) / 1e9
	fmt.Printf("packets: %d  bytes: %s  flows: %d  SYNs: %d  span: %.2fs\n",
		pkts, render.SI(float64(bytes)), flows.Len(), syns, durSec)
	fmt.Printf("packet sizes: %s\n\n", render.Quantiles(sizes))
	fmt.Print(render.CDF("packet size CDF (bytes)", sizes, 60, 8, false))

	fmt.Println("\ntop flows by bytes:")
	top := flows.Sorted()
	if len(top) > 10 {
		top = top[:10]
	}
	sort.Slice(top, func(i, j int) bool { return top[i].Val > top[j].Val })
	for _, kv := range top {
		fmt.Printf("  %-48s %s\n", kv.Key, render.SI(kv.Val))
	}
}

// openTrace sniffs the file's magic and returns an iterator over either
// the native mirror format or pcap.
func openTrace(f *os.File) (func(func(packet.Header)) error, error) {
	var magic [4]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return nil, fmt.Errorf("reading magic: %w", err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	if magic[0] == 'F' && magic[1] == 'B' && magic[2] == 'M' {
		r, err := mirror.NewReader(f)
		if err != nil {
			return nil, err
		}
		return r.ForEach, nil
	}
	r, err := mirror.NewPcapReader(f)
	if err != nil {
		return nil, err
	}
	return r.ForEach, nil
}
