package main

import (
	"os"
	"strings"
	"testing"

	"fbdcnet/internal/telemetry"
)

// TestRenderPaths pins the -paths report against a canned path-record
// file so the JSONL schema and the rendered layout stay in sync.
func TestRenderPaths(t *testing.T) {
	f, err := os.Open("testdata/paths.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := telemetry.ReadRecords(f)
	if err != nil {
		t.Fatalf("reading canned records: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("canned file has %d records, want 2", len(recs))
	}

	got := renderPaths(recs)
	for _, want := range []string{
		"telemetry path records: 2, hops: 4",
		"status: buffer-drop=1 delivered=1",
		"10.0.0.5:33412 > 10.0.1.9:80 1500B try 0 post 2 delivered in 12.4µs",
		"rsw0",
		"csw0.1",
		"qdepth 3.1k",
		"10.0.2.7:51022 > 10.0.0.5:9000 9000B try 1 post 0 rerouted buffer-drop",
		"rsw2",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("report is missing %q\nfull report:\n%s", want, got)
		}
	}
	if strings.Contains(got, "more records") {
		t.Errorf("report truncated a 2-record file:\n%s", got)
	}
}
