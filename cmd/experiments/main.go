// Command experiments regenerates every table and figure of the paper's
// evaluation from the synthetic datacenter and prints them in the paper's
// layout, one section per experiment.
//
// Usage:
//
//	experiments [-scale tiny|small|medium|large] [-seed N] [-parallel N]
//	            [-short SECONDS] [-long SECONDS] [-only NAME]
//	            [-faults SCENARIO] [-cpuprofile FILE] [-memprofile FILE]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fbdcnet/internal/core"
	"fbdcnet/internal/netsim"
	"fbdcnet/internal/prof"
	"fbdcnet/internal/topology"
)

func parseScale(s string) (topology.Scale, error) {
	switch s {
	case "tiny":
		return topology.ScaleTiny, nil
	case "small":
		return topology.ScaleSmall, nil
	case "medium":
		return topology.ScaleMedium, nil
	case "large":
		return topology.ScaleLarge, nil
	default:
		return 0, fmt.Errorf("unknown scale %q (tiny|small|medium|large)", s)
	}
}

func main() {
	scaleFlag := flag.String("scale", "tiny", "fleet scale: tiny|small|medium|large")
	seed := flag.Uint64("seed", 42, "deterministic experiment seed")
	short := flag.Int("short", 30, "short (sub-second analyses) trace seconds")
	long := flag.Int("long", 60, "long (flow analyses) trace seconds")
	only := flag.String("only", "", "run a single experiment (e.g. table3, figure12, ablations, faults)")
	jsonOut := flag.Bool("json", false, "print a machine-readable summary instead of rendered tables")
	parallel := flag.Int("parallel", 0, "worker goroutines for dataset generation (0 = GOMAXPROCS); results are identical at any value")
	faults := flag.String("faults", "", fmt.Sprintf("fault scenario for the degraded-mode section and summary (%s)",
		strings.Join(netsim.FaultScenarios(), "|")))
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	flag.Parse()

	stop, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer stop()

	scale, err := parseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := validScenario(*faults); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := core.DefaultConfig()
	cfg.Scale = scale
	cfg.Seed = *seed
	cfg.ShortTraceSec = *short
	cfg.LongTraceSec = *long
	cfg.Parallelism = *parallel
	cfg.Taggers = *parallel
	cfg.FaultScenario = *faults

	sys, err := core.NewSystem(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "building system:", err)
		os.Exit(1)
	}
	if *jsonOut {
		out, err := sys.Summarize().JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(string(out))
		return
	}
	if core.WriteSuite(os.Stdout, sys, *only) == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matches -only=%q\n", *only)
		os.Exit(2)
	}
}

// validScenario rejects unknown -faults values before any work happens.
func validScenario(name string) error {
	if name == "" {
		return nil
	}
	for _, sc := range netsim.FaultScenarios() {
		if name == sc {
			return nil
		}
	}
	return fmt.Errorf("unknown fault scenario %q (have %s)", name, strings.Join(netsim.FaultScenarios(), "|"))
}
