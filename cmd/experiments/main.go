// Command experiments regenerates every table and figure of the paper's
// evaluation from the synthetic datacenter and prints them in the paper's
// layout, one section per experiment.
//
// Usage:
//
//	experiments [-scale tiny|small|medium] [-seed N] [-parallel N]
//	            [-short SECONDS] [-long SECONDS] [-only NAME]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fbdcnet/internal/core"
	"fbdcnet/internal/topology"
)

func parseScale(s string) (topology.Scale, error) {
	switch s {
	case "tiny":
		return topology.ScaleTiny, nil
	case "small":
		return topology.ScaleSmall, nil
	case "medium":
		return topology.ScaleMedium, nil
	default:
		return 0, fmt.Errorf("unknown scale %q (tiny|small|medium)", s)
	}
}

func main() {
	scaleFlag := flag.String("scale", "tiny", "fleet scale: tiny|small|medium")
	seed := flag.Uint64("seed", 42, "deterministic experiment seed")
	short := flag.Int("short", 30, "short (sub-second analyses) trace seconds")
	long := flag.Int("long", 60, "long (flow analyses) trace seconds")
	only := flag.String("only", "", "run a single experiment (e.g. table3, figure12, ablations)")
	jsonOut := flag.Bool("json", false, "print a machine-readable summary instead of rendered tables")
	parallel := flag.Int("parallel", 0, "worker goroutines for dataset generation (0 = GOMAXPROCS); results are identical at any value")
	flag.Parse()

	scale, err := parseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := core.DefaultConfig()
	cfg.Scale = scale
	cfg.Seed = *seed
	cfg.ShortTraceSec = *short
	cfg.LongTraceSec = *long
	cfg.Parallelism = *parallel
	cfg.Taggers = *parallel

	sys, err := core.NewSystem(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "building system:", err)
		os.Exit(1)
	}
	if *jsonOut {
		out, err := sys.Summarize().JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(string(out))
		return
	}
	fmt.Printf("fbdcnet experiment harness: %d hosts, %d racks, %d clusters, %d datacenters (seed %d)\n\n",
		sys.Topo.NumHosts(), len(sys.Topo.Racks), len(sys.Topo.Clusters), len(sys.Topo.Datacenters), *seed)

	// Prewarm only for full-suite runs: a single -only experiment should
	// pay for its own datasets, not the whole suite's.
	if *only == "" {
		warmStart := time.Now()
		sys.Prewarm()
		fmt.Printf("prewarmed datasets on %d workers in %.1fs\n\n", cfg.Workers(), time.Since(warmStart).Seconds())
	}

	experiments := []struct {
		name string
		run  func() string
	}{
		{"table2", func() string { return sys.Table2().Render() }},
		{"table3", func() string { return sys.Table3().Render() }},
		{"table4", func() string { return sys.Table4().Render() }},
		{"section41", func() string { return sys.Section41().Render() }},
		{"figure4", func() string { return sys.Figure4().Render() }},
		{"figure5", func() string { return sys.Figure5().Render() }},
		{"figure6", func() string { return sys.Figure6().Render() }},
		{"figure7", func() string { return sys.Figure7().Render() }},
		{"figure8", func() string { return sys.Figure8().Render() }},
		{"figure9", func() string { return sys.Figure9().Render() }},
		{"figure10-11", func() string { return sys.Figure10And11().Render() }},
		{"figure12", func() string { return sys.Figure12().Render() }},
		{"figure13", func() string { return sys.Figure13().Render() }},
		{"figure14", func() string { return sys.Figure14().Render() }},
		{"figure15", func() string { return sys.Figure15(core.DefaultFigure15Config()).Render() }},
		{"figure16-17", func() string { return sys.Figure16And17().Render() }},
		{"ablations", func() string { return core.RenderAblations(sys.Ablations()) }},
		{"ext-incast", func() string {
			return sys.ExtensionIncast([]int{1, 2, 4, 8, 12}, 64<<10, 256<<10).Render()
		}},
		{"ext-oversub", func() string {
			factors := []float64{1, 2, 4, 10, 20, 40}
			return sys.ExtensionOversubscription(topology.RoleHadoop, factors, 3).Render() +
				sys.ExtensionOversubscription(topology.RoleWeb, factors, 3).Render() +
				sys.ExtensionOversubAllToAll(factors, 3).Render()
		}},
		{"ext-fabric", func() string { return sys.ExtensionFabric().Render() }},
		{"section52", func() string { return sys.Section52().Render() }},
		{"ext-dayoverday", func() string { return sys.DayOverDay().Render() }},
	}

	ran := 0
	for _, e := range experiments {
		if *only != "" && !strings.Contains(e.name, *only) {
			continue
		}
		start := time.Now()
		out := e.run()
		fmt.Printf("=== %s (%.1fs) ===\n%s\n", e.name, time.Since(start).Seconds(), out)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matches -only=%q\n", *only)
		os.Exit(2)
	}
}
