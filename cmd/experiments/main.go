// Command experiments regenerates every table and figure of the paper's
// evaluation from the synthetic datacenter and prints them in the paper's
// layout, one section per experiment.
//
// Stdout carries only the golden-checked experiment output (or the -json
// summary); every diagnostic goes to stderr through log/slog, so piping
// stdout to a file or diff stays clean. A run manifest (configuration,
// per-stage timings, packet counters) is written alongside the transcript,
// and -metrics-addr exposes live progress over HTTP while the run is hot.
//
// Usage:
//
//	experiments [-scale tiny|small|medium|large|xlarge] [-seed N] [-parallel N]
//	            [-matrix] [-windows N] [-mem-ceiling-mb N]
//	            [-short SECONDS] [-long SECONDS] [-only NAME]
//	            [-faults SCENARIO] [-trace-sample FRAC] [-queue-interval US]
//	            [-paths-out FILE] [-cpuprofile FILE] [-memprofile FILE]
//	            [-metrics-addr HOST:PORT] [-manifest FILE] [-quiet]
package main

import (
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strconv"
	"strings"
	"time"

	"fbdcnet/internal/core"
	"fbdcnet/internal/netsim"
	"fbdcnet/internal/obs"
	"fbdcnet/internal/obs/audit"
	"fbdcnet/internal/obs/export"
	"fbdcnet/internal/prof"
	"fbdcnet/internal/telemetry"
	"fbdcnet/internal/topology"
)

func parseScale(s string) (topology.Scale, error) {
	sc, ok := topology.ParseScale(s)
	if !ok {
		return 0, fmt.Errorf("unknown scale %q (%s)", s, strings.Join(topology.ScaleNames(), "|"))
	}
	return sc, nil
}

func main() {
	scaleFlag := flag.String("scale", "tiny", "fleet scale: "+strings.Join(topology.ScaleNames(), "|"))
	matrix := flag.Bool("matrix", false, "synthesize fleet traffic as rack-pair demand matrices instead of per-host flow sampling (million-host scales)")
	memCeilingMB := flag.Int64("mem-ceiling-mb", 0, "stamp this memory ceiling (MiB) into the run manifest; cmd/manifestcheck asserts the fleet heap peak stayed under it (0 = no ceiling)")
	windows := flag.Int("windows", 0, "override the number of fleet observation windows (0 = config default)")
	seed := flag.Uint64("seed", 42, "deterministic experiment seed")
	short := flag.Int("short", 30, "short (sub-second analyses) trace seconds")
	long := flag.Int("long", 60, "long (flow analyses) trace seconds")
	only := flag.String("only", "", "run a single experiment (e.g. table3, figure12, ablations, faults)")
	jsonOut := flag.Bool("json", false, "print a machine-readable summary instead of rendered tables")
	distributed := flag.Int("distributed", 0, "collect the fleet dataset through this many local agent processes streaming binary partials to an in-process aggregator (0 = in-process collection)")
	agentFaults := flag.Bool("agent-faults", false, "with -distributed: kill one agent at its seed-planned crash point and restart it, recording the coverage gap")
	fleetAgent := flag.Bool("fleet-agent", false, "internal: run as one fleet shard agent (set by -distributed re-exec)")
	fleetAgentID := flag.Int("fleet-agent-id", 0, "internal: agent id")
	fleetAgentInc := flag.Int("fleet-agent-inc", 0, "internal: agent incarnation")
	fleetAgentConnect := flag.String("fleet-agent-connect", "", "internal: aggregator socket path")
	fleetAgentCount := flag.Int("fleet-agent-count", 0, "internal: total agent count")
	parallel := flag.Int("parallel", 0, "worker goroutines for dataset generation (0 = GOMAXPROCS); results are identical at any value")
	sketchMode := flag.Bool("sketch", false, "replace exact heavy-hitter tables with bounded-memory sketches and add HLL distinct counts to fleet collection")
	faults := flag.String("faults", "", fmt.Sprintf("fault scenario for the degraded-mode section and summary (%s)",
		strings.Join(netsim.FaultScenarios(), "|")))
	traceSample := flag.Float64("trace-sample", 0.1, "in-band telemetry flow sampling fraction (0 disables the telemetry section)")
	queueInterval := flag.Int("queue-interval", 200, "queue occupancy sampling interval, microseconds")
	pathsOut := flag.String("paths-out", "", "write retained telemetry path records (JSONL, readable by traceview -paths) to this file")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	metricsAddr := flag.String("metrics-addr", "", "serve live metrics on this address (/metrics Prometheus text, /debug/vars expvar, / progress)")
	manifestPath := flag.String("manifest", "run_manifest.json", "write the run manifest (config, stage timings, counters; distributed runs add the per-agent section) to this file; empty disables")
	auditFlag := flag.Bool("audit", false, "record the determinism flight recorder: per-cell checkpoint digests into the manifest audit section plus a crash black box (compare manifests with cmd/digestdiff)")
	auditOut := flag.String("audit-out", "", "with -audit: write the black-box JSON dump to this file on panic, SIGQUIT, or a planned agent kill")
	auditPerturb := flag.String("audit-perturb", "", "with -audit: plant a ledger-only divergence at fleet-collect cell W:S (testing aid for digestdiff and CI; experiment outputs stay untouched)")
	traceOut := flag.String("trace-out", "", "write the run timeline (all agents plus the aggregator on one clock) as Chrome trace-event JSON to this file")
	quiet := flag.Bool("quiet", false, "suppress informational diagnostics on stderr (warnings and errors still print)")
	flag.Parse()

	logger := newLogger(*quiet)

	stop, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		logger.Error("starting profiler", "err", err)
		os.Exit(2)
	}
	defer stop()

	scale, err := parseScale(*scaleFlag)
	if err != nil {
		logger.Error("bad -scale", "err", err)
		os.Exit(2)
	}
	if err := validScenario(*faults); err != nil {
		logger.Error("bad -faults", "err", err)
		os.Exit(2)
	}
	cfg := core.DefaultConfig()
	cfg.Scale = scale
	cfg.Seed = *seed
	cfg.ShortTraceSec = *short
	cfg.LongTraceSec = *long
	cfg.Parallelism = *parallel
	cfg.Taggers = *parallel
	cfg.SketchMode = *sketchMode
	cfg.FaultScenario = *faults
	cfg.TraceSample = *traceSample
	cfg.QueueInterval = netsim.Time(*queueInterval) * netsim.Microsecond
	cfg.FleetMatrix = *matrix
	cfg.MemCeilingBytes = *memCeilingMB << 20
	if *windows > 0 {
		cfg.FleetWindows = *windows
	}
	cfg.Obs = obs.NewRegistry()
	if *auditFlag {
		cfg.Audit = audit.New()
		bb := audit.NewBlackBox(0)
		cfg.Audit.SetBlackBox(bb)
		defer bb.HandlePanic(*auditOut)
		bb.InstallSignalDump(*auditOut)
		if *auditPerturb != "" {
			w, s, err := parsePerturb(*auditPerturb)
			if err != nil {
				logger.Error("bad -audit-perturb", "err", err)
				os.Exit(2)
			}
			cfg.Audit.Perturb(w, s)
			logger.Warn("planted ledger divergence", "window", w, "shard", s)
		}
	} else if *auditPerturb != "" {
		logger.Error("-audit-perturb requires -audit")
		os.Exit(2)
	}
	if *pathsOut != "" && cfg.TraceSample <= 0 {
		logger.Error("-paths-out needs a positive -trace-sample")
		os.Exit(2)
	}

	sys, err := core.NewSystem(cfg)
	if err != nil {
		logger.Error("building system", "err", err)
		os.Exit(1)
	}

	if *fleetAgent {
		// The hidden -distributed re-exec branch: stream one shard range
		// and exit before any experiment (or manifest) output.
		if *metricsAddr != "" {
			srv, err := obs.Serve(*metricsAddr, cfg.Obs)
			if err != nil {
				logger.Error("starting agent metrics endpoint", "err", err)
				os.Exit(1)
			}
			defer srv.Close()
			logger.Info("agent metrics endpoint listening", "agent", *fleetAgentID, "addr", srv.Addr())
		}
		runFleetAgent(sys, *fleetAgentID, *fleetAgentCount, *fleetAgentInc,
			*fleetAgentConnect, *agentFaults, *auditOut, logger)
		return
	}
	if *distributed > 0 {
		// Derive and validate every agent endpoint up front: a collision
		// or port overflow fails the launch instead of one agent dying
		// later with "address already in use". Agents run -quiet, so the
		// resolved table is announced here.
		addrs, err := core.AgentMetricsAddrs(*metricsAddr, *distributed, *metricsAddr)
		if err != nil {
			logger.Error("deriving agent metrics endpoints", "err", err)
			os.Exit(2)
		}
		for a, addr := range addrs {
			if addr != "" {
				logger.Info("agent metrics endpoint", "agent", a, "addr", addr)
			}
		}
		gaps, err := sys.CollectFleetDistributed(*distributed,
			fleetAgentArgs(cfg, *distributed, *agentFaults, *metricsAddr))
		if err != nil {
			logger.Error("distributed fleet collection failed", "err", err)
			os.Exit(1)
		}
		if len(gaps) > 0 {
			cells := 0
			for _, g := range gaps {
				cells += g.Cells
			}
			logger.Warn("distributed collection has coverage gaps", "gaps", len(gaps), "cells", cells)
		}
	}

	if *metricsAddr != "" {
		srv, err := obs.Serve(*metricsAddr, cfg.Obs)
		if err != nil {
			logger.Error("starting metrics endpoint", "err", err)
			os.Exit(1)
		}
		defer srv.Close()
		logger.Info("metrics endpoint listening", "addr", srv.Addr())
	}

	if *jsonOut {
		out, err := sys.Summarize().JSON()
		if err != nil {
			logger.Error("rendering summary", "err", err)
			os.Exit(1)
		}
		fmt.Println(string(out))
	} else if core.WriteSuite(os.Stdout, sys, *only) == 0 {
		logger.Error("no experiment matches filter", "only", *only)
		os.Exit(2)
	}

	if *pathsOut != "" {
		if err := writePaths(*pathsOut, sys); err != nil {
			logger.Error("writing telemetry path records", "err", err)
			os.Exit(1)
		}
		logger.Info("wrote telemetry path records", "path", *pathsOut)
	}

	if *manifestPath != "" {
		m := cfg.Obs.Manifest(cfg.ManifestMeta("experiments"))
		m.Agents = sys.AgentManifestRecords()
		m.Audit = cfg.Audit.Section()
		if err := m.Validate(); err != nil {
			logger.Warn("manifest fails schema validation", "err", err)
		}
		if err := m.WriteFile(*manifestPath); err != nil {
			logger.Error("writing run manifest", "err", err)
			os.Exit(1)
		}
		logger.Info("wrote run manifest", "path", *manifestPath)
	}
	if *traceOut != "" {
		procs := export.FromRun(cfg.Obs, sys.AgentReports())
		if err := export.WriteFile(*traceOut, procs); err != nil {
			logger.Error("writing run timeline", "err", err)
			os.Exit(1)
		}
		logger.Info("wrote run timeline", "path", *traceOut, "procs", len(procs))
	}
}

// newLogger builds the stderr diagnostic logger: stdout stays reserved
// for golden-checked experiment output.
func newLogger(quiet bool) *slog.Logger {
	level := slog.LevelInfo
	if quiet {
		level = slog.LevelWarn
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(logger)
	return logger
}

// writePaths exports the telemetry experiment's retained path records as
// JSONL for traceview -paths.
func writePaths(path string, sys *core.System) error {
	res := sys.Telemetry()
	if res == nil {
		return fmt.Errorf("telemetry disabled")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.WriteRecords(f, res.Records, res.Switches); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runFleetAgent is the hidden -fleet-agent branch of the -distributed
// re-exec: dial the aggregator, stream this shard range, and exit with
// core.AgentCrashExitCode when the seed-planned crash point is reached
// so the parent restarts the next incarnation.
func runFleetAgent(sys *core.System, id, agents, incarnation int, connect string, faults bool, auditOut string, logger *slog.Logger) {
	crashAfter := int64(-1)
	if faults {
		if plan := sys.PlanAgentCrash(agents); plan.Agent == id && incarnation == 0 {
			crashAfter = plan.AfterTask
		}
	}
	conn, err := core.DialFleetAgent("unix", connect, 10*time.Second)
	if err != nil {
		logger.Error("fleet agent dialing aggregator", "agent", id, "err", err)
		os.Exit(1)
	}
	err = sys.RunFleetAgent(id, agents, uint32(incarnation), conn, crashAfter)
	conn.Close()
	if errors.Is(err, core.ErrPlannedCrash) {
		// The planned kill is the black box's flight-recorder moment:
		// dump the ring before the process dies so the gap is debuggable.
		sys.Cfg.Audit.BB().Dump(auditOut, "planned-crash")
		os.Exit(core.AgentCrashExitCode)
	}
	if err != nil {
		logger.Error("fleet agent failed", "agent", id, "err", err)
		os.Exit(1)
	}
}

// fleetAgentArgs builds the re-exec argument list reproducing this
// process's fleet configuration for one agent incarnation.
func fleetAgentArgs(cfg core.Config, agents int, faults bool, metricsAddr string) func(addr string, id, inc int) []string {
	return func(addr string, id, inc int) []string {
		args := []string{
			"-fleet-agent",
			"-fleet-agent-id", strconv.Itoa(id),
			"-fleet-agent-inc", strconv.Itoa(inc),
			"-fleet-agent-connect", addr,
			"-fleet-agent-count", strconv.Itoa(agents),
			"-scale", cfg.Scale.String(),
			"-seed", strconv.FormatUint(cfg.Seed, 10),
			"-windows", strconv.Itoa(cfg.FleetWindows),
			"-quiet",
		}
		if cfg.FleetMatrix {
			args = append(args, "-matrix")
		}
		if cfg.SketchMode {
			args = append(args, "-sketch")
		}
		if faults {
			args = append(args, "-agent-faults")
		}
		if cfg.Audit.Enabled() {
			// -audit propagates so agents ledger and forward their cells;
			// -audit-perturb deliberately does NOT — the planted divergence
			// belongs only to the aggregator's authoritative ledger.
			args = append(args, "-audit")
		}
		if maddr := core.AgentMetricsAddr(metricsAddr, id); maddr != "" {
			args = append(args, "-metrics-addr", maddr)
		}
		return args
	}
}

// parsePerturb parses an -audit-perturb "W:S" cell spec.
func parsePerturb(spec string) (window, shard int, err error) {
	w, s, ok := strings.Cut(spec, ":")
	if !ok {
		return 0, 0, fmt.Errorf("perturb spec %q is not WINDOW:SHARD", spec)
	}
	window, err = strconv.Atoi(w)
	if err != nil || window < 0 {
		return 0, 0, fmt.Errorf("perturb spec %q: bad window %q", spec, w)
	}
	shard, err = strconv.Atoi(s)
	if err != nil || shard < 0 {
		return 0, 0, fmt.Errorf("perturb spec %q: bad shard %q", spec, s)
	}
	return window, shard, nil
}

// validScenario rejects unknown -faults values before any work happens.
func validScenario(name string) error {
	if name == "" {
		return nil
	}
	for _, sc := range netsim.FaultScenarios() {
		if name == sc {
			return nil
		}
	}
	return fmt.Errorf("unknown fault scenario %q (have %s)", name, strings.Join(netsim.FaultScenarios(), "|"))
}
